//! Property tests for the network substrate: coverage guarantees that the
//! protocol's delivery correctness depends on.

use mobieyes_geo::{Grid, GridRect, Point, Rect};
use mobieyes_net::BaseStationLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn own_station_always_covers_the_object(
        x in 0.0..100.0f64, y in 0.0..100.0f64, alen in 2.0..60.0f64
    ) {
        let layout = BaseStationLayout::new(Rect::new(0.0, 0.0, 100.0, 100.0), alen);
        let s = layout.station_at(Point::new(x, y));
        prop_assert!(layout.covers(s, Point::new(x, y)));
    }

    #[test]
    fn minimal_cover_fully_covers_monitoring_regions(
        cx in 0u32..20, cy in 0u32..20, radius in 0.1..12.0f64,
        alen in 4.0..50.0f64,
        px in 0.0..1.0f64, py in 0.0..1.0f64,
    ) {
        // Any point inside any cell of the region must be covered by at
        // least one chosen station — otherwise an object there would miss
        // the broadcast and the protocol would silently lose accuracy.
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let layout = BaseStationLayout::new(universe, alen);
        let cell = mobieyes_geo::CellId::new(cx.min(grid.cols - 1), cy.min(grid.rows - 1));
        let region = grid.monitoring_region(cell, radius);
        let cover = layout.minimal_cover(&grid, &region);
        prop_assert!(!cover.is_empty());
        for c in region.iter() {
            let r = grid.cell_rect(c);
            // Clip to the universe: objects only exist inside it.
            let Some(r) = r.intersection(&universe) else { continue };
            let p = Point::new(r.lx + px * r.w(), r.ly + py * r.h());
            prop_assert!(
                cover.iter().any(|&s| layout.covers(s, p)),
                "point {p:?} of region {region:?} uncovered (alen={alen})"
            );
        }
    }

    #[test]
    fn bigger_stations_never_need_more_broadcasts(
        cx in 0u32..18, cy in 0u32..18, radius in 0.1..12.0f64,
    ) {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let cell = mobieyes_geo::CellId::new(cx, cy);
        let region = grid.monitoring_region(cell, radius);
        let mut last = usize::MAX;
        for alen in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let layout = BaseStationLayout::new(universe, alen);
            let n = layout.minimal_cover(&grid, &region).len();
            prop_assert!(n <= last, "cover grew from {last} to {n} at alen={alen}");
            last = n;
        }
        // A single universe-sized station always suffices.
        prop_assert!(last >= 1);
    }

    #[test]
    fn empty_region_needs_no_stations(alen in 2.0..60.0f64) {
        let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = Grid::new(universe, 5.0);
        let layout = BaseStationLayout::new(universe, alen);
        prop_assert!(layout.minimal_cover(&grid, &GridRect::EMPTY).is_empty());
    }
}
