//! The partitioned tier's headline invariant: for any seed and fault
//! plan, an N-partition deployment produces byte-identical per-tick query
//! results, result-change uplink counts and protocol telemetry to the
//! single-server deployment — at any thread count of the tick engine,
//! with or without periodic load-driven partition-map rebalancing.
//!
//! The reference run is `partitions = 1` (literally the existing
//! single-server code path); each cluster run is stepped tick by tick
//! against the reference's captured per-tick result sets, then the final
//! protocol snapshots are compared with
//! [`MetricsSnapshot::protocol_eq`](mobieyes_telemetry::MetricsSnapshot::protocol_eq).

use mobieyes_core::server::srv_keys;
use mobieyes_core::{ObjectId, Propagation};
use mobieyes_sim::{MobiEyesSim, SimConfig};
use mobieyes_telemetry::MetricsSnapshot;
use std::collections::BTreeSet;

/// Ticks stepped in every run (warm-up is part of the comparison: the
/// handshake traffic must match too).
const TICKS: usize = 12;

fn base_config(seed: u64, propagation: Propagation, chaos: bool) -> SimConfig {
    let mut c = SimConfig::small_test(seed).with_propagation(propagation);
    if chaos {
        c = SimConfig::builder()
            .seed(c.seed)
            .objects(c.num_objects)
            .queries(c.num_queries)
            .objects_changing_velocity(c.objects_changing_velocity)
            .area(c.area)
            .propagation(propagation)
            .uplink_drop(0.12)
            .downlink_drop(0.08)
            .dup_rate(0.05)
            .churn_rate(0.10)
            .lease_ticks(4)
            .build()
            .expect("valid chaos config");
    }
    c
}

struct Trace {
    /// `results[tick][query]` — every query's result set after each tick.
    results: Vec<Vec<BTreeSet<ObjectId>>>,
    snapshot: MetricsSnapshot,
    /// Final partition-map generation (0 for single-server runs and for
    /// cluster runs that never rebalanced).
    map_generation: u64,
}

fn run_traced(config: SimConfig) -> Trace {
    let partitions = config.resolved_partitions();
    let mut sim = MobiEyesSim::new(config);
    let mut results = Vec::with_capacity(TICKS);
    for _ in 0..TICKS {
        sim.step(true);
        results.push(
            sim.query_ids()
                .iter()
                .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
                .collect(),
        );
    }
    let map_generation = if partitions > 1 {
        sim.cluster().map_generation()
    } else {
        0
    };
    Trace {
        results,
        snapshot: sim.telemetry().snapshot(),
        map_generation,
    }
}

fn assert_equivalent(seed: u64, propagation: Propagation, chaos: bool) {
    let reference = run_traced(base_config(seed, propagation, chaos));
    assert!(
        reference.snapshot.counter(srv_keys::RESULT_UPDATES) > 0,
        "reference run must exercise result reporting (seed {seed})"
    );
    // (partitions, threads, rebalance cadence). The rebalancing rows prove
    // the headline invariant of the load balancer: recomputing the
    // partition map mid-run from observed load must not change a single
    // result byte or protocol counter.
    let matrix = [
        (2usize, 1usize, 0usize),
        (2, 4, 0),
        (4, 1, 0),
        (4, 4, 0),
        (2, 1, 3),
        (4, 4, 3),
    ];
    for (partitions, threads, rebalance) in matrix {
        let config = base_config(seed, propagation, chaos)
            .with_partitions(partitions)
            .with_threads(threads)
            .with_rebalance_ticks(rebalance);
        let run = run_traced(config);
        for (tick, (a, b)) in reference.results.iter().zip(&run.results).enumerate() {
            assert_eq!(
                a, b,
                "per-tick results diverged: seed {seed} {propagation:?} chaos={chaos} \
                 partitions={partitions} threads={threads} rebalance={rebalance} tick {tick}"
            );
        }
        assert_eq!(
            reference.snapshot.counter(srv_keys::RESULT_UPDATES),
            run.snapshot.counter(srv_keys::RESULT_UPDATES),
            "result-change uplink count diverged: seed {seed} partitions={partitions} \
             rebalance={rebalance}"
        );
        assert!(
            reference.snapshot.protocol_eq(&run.snapshot),
            "protocol telemetry diverged: seed {seed} {propagation:?} chaos={chaos} \
             partitions={partitions} threads={threads} rebalance={rebalance}"
        );
        if rebalance > 0 {
            assert!(
                run.map_generation > 0,
                "rebalance cadence never installed a new map generation: seed {seed} \
                 partitions={partitions} rebalance={rebalance}"
            );
        }
    }
}

#[test]
fn eqp_fault_free_matches_single_server() {
    for seed in [61, 62] {
        assert_equivalent(seed, Propagation::Eager, false);
    }
}

#[test]
fn lqp_fault_free_matches_single_server() {
    for seed in [63, 64] {
        assert_equivalent(seed, Propagation::Lazy, false);
    }
}

#[test]
fn eqp_chaos_matches_single_server() {
    for seed in [65, 66] {
        assert_equivalent(seed, Propagation::Eager, true);
    }
}

#[test]
fn lqp_chaos_matches_single_server() {
    for seed in [67, 68] {
        assert_equivalent(seed, Propagation::Lazy, true);
    }
}
