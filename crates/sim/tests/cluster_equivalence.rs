//! The partitioned tier's headline invariant: for any seed and fault
//! plan, an N-partition deployment produces byte-identical per-tick query
//! results, result-change uplink counts and protocol telemetry to the
//! single-server deployment — at any thread count of the tick engine,
//! with or without periodic load-driven partition-map rebalancing.
//!
//! The reference run is `partitions = 1` (literally the existing
//! single-server code path); each cluster run is stepped tick by tick
//! against the reference's captured per-tick result sets, then the final
//! protocol snapshots are compared with
//! [`MetricsSnapshot::protocol_eq`](mobieyes_telemetry::MetricsSnapshot::protocol_eq).

use mobieyes_core::server::srv_keys;
use mobieyes_core::{ObjectId, Propagation};
use mobieyes_net::PartitionCrashPlan;
use mobieyes_sim::{MobiEyesSim, RecoveryKind, SimConfig};
use mobieyes_telemetry::MetricsSnapshot;
use std::collections::BTreeSet;

/// Ticks stepped in every run (warm-up is part of the comparison: the
/// handshake traffic must match too).
const TICKS: usize = 12;

fn base_config(seed: u64, propagation: Propagation, chaos: bool) -> SimConfig {
    let mut c = SimConfig::small_test(seed).with_propagation(propagation);
    if chaos {
        c = SimConfig::builder()
            .seed(c.seed)
            .objects(c.num_objects)
            .queries(c.num_queries)
            .objects_changing_velocity(c.objects_changing_velocity)
            .area(c.area)
            .propagation(propagation)
            .uplink_drop(0.12)
            .downlink_drop(0.08)
            .dup_rate(0.05)
            .churn_rate(0.10)
            .lease_ticks(4)
            .build()
            .expect("valid chaos config");
    }
    c
}

struct Trace {
    /// `results[tick][query]` — every query's result set after each tick.
    results: Vec<Vec<BTreeSet<ObjectId>>>,
    snapshot: MetricsSnapshot,
    /// Final partition-map generation (0 for single-server runs and for
    /// cluster runs that never rebalanced).
    map_generation: u64,
}

fn run_traced(config: SimConfig) -> Trace {
    let partitions = config.resolved_partitions();
    let mut sim = MobiEyesSim::new(config);
    let mut results = Vec::with_capacity(TICKS);
    for _ in 0..TICKS {
        sim.step(true);
        results.push(
            sim.query_ids()
                .iter()
                .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
                .collect(),
        );
    }
    let map_generation = if partitions > 1 {
        sim.cluster().map_generation()
    } else {
        0
    };
    Trace {
        results,
        snapshot: sim.telemetry().snapshot(),
        map_generation,
    }
}

fn assert_equivalent(seed: u64, propagation: Propagation, chaos: bool) {
    let reference = run_traced(base_config(seed, propagation, chaos));
    assert!(
        reference.snapshot.counter(srv_keys::RESULT_UPDATES) > 0,
        "reference run must exercise result reporting (seed {seed})"
    );
    // (partitions, threads, rebalance cadence). The rebalancing rows prove
    // the headline invariant of the load balancer: recomputing the
    // partition map mid-run from observed load must not change a single
    // result byte or protocol counter.
    let matrix = [
        (2usize, 1usize, 0usize),
        (2, 4, 0),
        (4, 1, 0),
        (4, 4, 0),
        (2, 1, 3),
        (4, 4, 3),
    ];
    for (partitions, threads, rebalance) in matrix {
        let config = base_config(seed, propagation, chaos)
            .with_partitions(partitions)
            .with_threads(threads)
            .with_rebalance_ticks(rebalance);
        let run = run_traced(config);
        for (tick, (a, b)) in reference.results.iter().zip(&run.results).enumerate() {
            assert_eq!(
                a, b,
                "per-tick results diverged: seed {seed} {propagation:?} chaos={chaos} \
                 partitions={partitions} threads={threads} rebalance={rebalance} tick {tick}"
            );
        }
        assert_eq!(
            reference.snapshot.counter(srv_keys::RESULT_UPDATES),
            run.snapshot.counter(srv_keys::RESULT_UPDATES),
            "result-change uplink count diverged: seed {seed} partitions={partitions} \
             rebalance={rebalance}"
        );
        assert!(
            reference.snapshot.protocol_eq(&run.snapshot),
            "protocol telemetry diverged: seed {seed} {propagation:?} chaos={chaos} \
             partitions={partitions} threads={threads} rebalance={rebalance}"
        );
        if rebalance > 0 {
            assert!(
                run.map_generation > 0,
                "rebalance cadence never installed a new map generation: seed {seed} \
                 partitions={partitions} rebalance={rebalance}"
            );
        }
    }
}

#[test]
fn eqp_fault_free_matches_single_server() {
    for seed in [61, 62] {
        assert_equivalent(seed, Propagation::Eager, false);
    }
}

#[test]
fn lqp_fault_free_matches_single_server() {
    for seed in [63, 64] {
        assert_equivalent(seed, Propagation::Lazy, false);
    }
}

#[test]
fn eqp_chaos_matches_single_server() {
    for seed in [65, 66] {
        assert_equivalent(seed, Propagation::Eager, true);
    }
}

#[test]
fn lqp_chaos_matches_single_server() {
    for seed in [67, 68] {
        assert_equivalent(seed, Propagation::Lazy, true);
    }
}

// --- partition crash recovery (DESIGN.md §13) ---

/// Lease duration for the crash runs; heartbeats fire every 3 ticks.
const LEASE_TICKS: usize = 6;
/// The §13 convergence contract: after the last fence, with mobility
/// frozen, every result set is exact within three leases plus the
/// digest-beacon round trip.
const MAX_RECOVERY: usize = 3 * LEASE_TICKS + 2;
/// Tick boundary at which the crash plan fires (after the warm-up
/// handshake has settled and some measured ticks have run).
const CRASH_TICK: u64 = 8;
/// Ticks stepped after the crash before the convergence phase, so the
/// run exercises recovery under live mobility first.
const POST_CRASH_TICKS: usize = 4;

fn crash_config(seed: u64, propagation: Propagation, partitions: usize) -> SimConfig {
    SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_lease_ticks(LEASE_TICKS)
        .with_partitions(partitions)
}

struct CrashTrace {
    /// Per-tick results for the live (pre-freeze) phase.
    results: Vec<Vec<BTreeSet<ObjectId>>>,
    /// Ticks of frozen mobility needed to reach exact ground truth.
    converged_after: usize,
    digest: u64,
}

fn collect_results(sim: &MobiEyesSim) -> Vec<BTreeSet<ObjectId>> {
    sim.query_ids()
        .iter()
        .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
        .collect()
}

fn matches_truth(sim: &MobiEyesSim, truth: &[BTreeSet<ObjectId>]) -> bool {
    sim.query_ids()
        .iter()
        .zip(truth)
        .all(|(&q, t)| sim.query_result(q).map(|r| r == t).unwrap_or(t.is_empty()))
}

/// Runs a deployment through a deterministic partition crash and the
/// configured recovery mode, asserting the §13 contract: the dead
/// partitions are fenced, their cells reassigned, and — once mobility is
/// frozen — every result set reconverges *exactly* to ground truth
/// within [`MAX_RECOVERY`] ticks.
fn run_crash_traced(
    config: SimConfig,
    kills: usize,
    recovery: RecoveryKind,
    threads: usize,
) -> CrashTrace {
    let partitions = config.resolved_partitions();
    let seed = config.seed;
    let plan = PartitionCrashPlan::seeded(seed, partitions as u32, kills, CRASH_TICK);
    let victims = plan.victims.clone();
    let mut sim = MobiEyesSim::new(config.with_threads(threads));
    sim.set_crash_plan(plan);
    sim.set_recovery(recovery);
    let mut results = Vec::new();
    for _ in 0..CRASH_TICK as usize + POST_CRASH_TICKS {
        sim.step(false);
        results.push(collect_results(&sim));
    }
    match recovery {
        RecoveryKind::Failover => {
            assert_eq!(
                sim.cluster().dead_partitions(),
                victims,
                "victims must stay fenced off under failover (seed {seed})"
            );
        }
        RecoveryKind::Respawn => {
            assert!(
                sim.cluster().dead_partitions().is_empty(),
                "respawn must bring every victim back (seed {seed})"
            );
        }
    }
    assert!(
        sim.cluster().map_generation() > 0,
        "the failover fence must install a new map generation (seed {seed})"
    );
    // Freeze mobility and measure convergence to exact ground truth.
    sim.freeze(true);
    let truth = sim.ground_truth();
    let mut converged_after = None;
    for extra in 0..=MAX_RECOVERY {
        if matches_truth(&sim, &truth) {
            converged_after = Some(extra);
            break;
        }
        sim.step(false);
    }
    let converged_after = converged_after.unwrap_or_else(|| {
        panic!(
            "results did not reconverge to ground truth within {MAX_RECOVERY} frozen ticks: \
             seed {seed} partitions={partitions} kills={kills} recovery={recovery}"
        )
    });
    CrashTrace {
        results,
        converged_after,
        digest: sim.result_digest(),
    }
}

fn assert_crash_recovery(propagation: Propagation, recovery: RecoveryKind) {
    // (seed, partitions, kills): one of 2, one of 4, two of 8.
    for (seed, partitions, kills) in [(71u64, 2usize, 1usize), (72, 4, 1), (73, 8, 2)] {
        let trace = run_crash_traced(
            crash_config(seed, propagation, partitions),
            kills,
            recovery,
            1,
        );
        assert!(
            trace.converged_after <= MAX_RECOVERY,
            "convergence bound violated: {} > {MAX_RECOVERY}",
            trace.converged_after
        );
        // The tick engine's headline invariant survives the crash path:
        // the same scenario is byte-identical at four worker threads.
        let threaded = run_crash_traced(
            crash_config(seed, propagation, partitions),
            kills,
            recovery,
            4,
        );
        assert_eq!(
            trace.results, threaded.results,
            "per-tick results diverged across thread counts: seed {seed} \
             partitions={partitions} kills={kills} recovery={recovery}"
        );
        assert_eq!(
            trace.digest, threaded.digest,
            "post-recovery digest diverged across thread counts: seed {seed}"
        );
        assert_eq!(trace.converged_after, threaded.converged_after);
    }
}

#[test]
fn eqp_failover_reconverges_exactly() {
    assert_crash_recovery(Propagation::Eager, RecoveryKind::Failover);
}

#[test]
fn lqp_failover_reconverges_exactly() {
    assert_crash_recovery(Propagation::Lazy, RecoveryKind::Failover);
}

#[test]
fn eqp_respawn_reconverges_exactly() {
    assert_crash_recovery(Propagation::Eager, RecoveryKind::Respawn);
}

#[test]
fn lqp_respawn_reconverges_exactly() {
    assert_crash_recovery(Propagation::Lazy, RecoveryKind::Respawn);
}

/// Regression: a query lost with a crashed partition is re-installed at a
/// new home with a freshly computed monitoring region, and every
/// partition that monitored its pre-crash region — including the new
/// home itself — must retire the old RQI coverage. A dense grid with a
/// moving focal makes the regions differ; the stale rows then either
/// skew the heartbeat digests or, once the stub is pruned during
/// re-adoption, panic the digest beacon outright.
#[test]
fn reinstalled_query_retires_stale_rqi_coverage() {
    for recovery in [RecoveryKind::Failover, RecoveryKind::Respawn] {
        let mut config = SimConfig::small_test(0x4D6F_6269_4579_6573)
            .with_objects(400)
            .with_queries(40)
            .with_nmo(40)
            .with_lease_ticks(LEASE_TICKS)
            .with_partitions(4)
            .with_partition_crash_ticks(5)
            .with_recovery(recovery);
        config.area = 4000.0;
        config.ticks = 12;
        config.warmup_ticks = 2;
        let mut sim = MobiEyesSim::new(config);
        for _ in 0..14 {
            sim.step(false);
            sim.cluster().check_invariants();
        }
        sim.shutdown();
    }
}
