//! Transport equivalence: every bus backend must agree on query results.
//!
//! The reference deployment pumps inter-server envelopes over the
//! deterministic lock-step queue. The same workload is then run (a) with
//! the envelopes riding a real loopback socket bus inside one process and
//! (b) against live partition services on real sockets (thread-hosted —
//! the identical service loop `mobieyes-serve` runs behind a process
//! boundary). All three must produce identical per-tick result sets for
//! every query, on every seed × propagation × partition-count cell of the
//! matrix.

use mobieyes_core::{ObjectId, Propagation};
use mobieyes_sim::{ClusterClient, HostedPartitions, MobiEyesSim, SimConfig, TransportKind};
use mobieyes_telemetry::Telemetry;
use std::collections::BTreeSet;
use std::time::Duration;

const TICKS: usize = 10;

type ResultTrace = Vec<Vec<BTreeSet<ObjectId>>>;

fn config(seed: u64, propagation: Propagation, partitions: usize) -> SimConfig {
    SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_partitions(partitions)
}

/// Steps `sim` for the comparison window, capturing every query's result
/// set after each tick (owned fetch: works on remote deployments too).
fn trace(sim: &mut MobiEyesSim) -> ResultTrace {
    (0..TICKS)
        .map(|_| {
            sim.step(true);
            sim.query_ids()
                .iter()
                .map(|&q| sim.query_result_owned(q).unwrap_or_default())
                .collect()
        })
        .collect()
}

fn assert_traces_match(label: &str, reference: &ResultTrace, candidate: &ResultTrace) {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "{label}: tick counts differ"
    );
    for (t, (r, c)) in reference.iter().zip(candidate.iter()).enumerate() {
        assert_eq!(r, c, "{label}: result sets diverge at tick {t}");
    }
}

/// Runs the full workload against thread-hosted partition services over
/// real sockets and returns the per-tick trace plus the final digest.
fn remote_trace(cfg: SimConfig, partitions: usize, uds: bool) -> (ResultTrace, u64) {
    let hosted = HostedPartitions::spawn(partitions, uds).expect("spawn partition services");
    let client = ClusterClient::connect(hosted.endpoints(), Duration::from_secs(5))
        .expect("connect to hosted partitions");
    let mut sim = client.into_sim(cfg, Telemetry::new());
    let results = trace(&mut sim);
    let digest = sim.result_digest();
    sim.shutdown();
    hosted.join().expect("partition services exit cleanly");
    (results, digest)
}

fn check_cell(seed: u64, propagation: Propagation, partitions: usize, uds: bool) {
    let reference = {
        let mut sim = MobiEyesSim::new(config(seed, propagation, partitions));
        trace(&mut sim)
    };
    // (a) In-process cluster with the bus over a kernel socket pair. Only
    // meaningful when a bus exists (partitions > 1).
    if partitions > 1 {
        let kind = if uds {
            TransportKind::Uds
        } else {
            TransportKind::Tcp
        };
        let mut sim = MobiEyesSim::new(config(seed, propagation, partitions).with_transport(kind));
        let socket_bus = trace(&mut sim);
        assert_traces_match(
            &format!("socket bus seed={seed} p={partitions} {propagation:?}"),
            &reference,
            &socket_bus,
        );
    }
    // (b) Live services over real sockets, one per partition.
    let (remote, remote_digest) =
        remote_trace(config(seed, propagation, partitions), partitions, uds);
    assert_traces_match(
        &format!("remote seed={seed} p={partitions} {propagation:?}"),
        &reference,
        &remote,
    );
    // The digest summarizing the final sets must match the reference's.
    let mut ref_sim = MobiEyesSim::new(config(seed, propagation, partitions));
    for _ in 0..TICKS {
        ref_sim.step(true);
    }
    assert_eq!(
        ref_sim.result_digest(),
        remote_digest,
        "digest diverges: seed={seed} p={partitions} {propagation:?}"
    );
}

/// Like [`remote_trace`], but also reports the partition-map generation the
/// coordinator ended on — the rebalance cells assert the fence actually
/// installed new maps over the RPC surface, not just that results agree.
fn remote_rebalance_trace(cfg: SimConfig, partitions: usize, uds: bool) -> (ResultTrace, u64, u64) {
    let hosted = HostedPartitions::spawn(partitions, uds).expect("spawn partition services");
    let client = ClusterClient::connect(hosted.endpoints(), Duration::from_secs(5))
        .expect("connect to hosted partitions");
    let mut sim = client.into_sim(cfg, Telemetry::new());
    let results = trace(&mut sim);
    let digest = sim.result_digest();
    let generation = sim.cluster().map_generation();
    sim.shutdown();
    hosted.join().expect("partition services exit cleanly");
    (results, digest, generation)
}

/// Rebalance equivalence: with periodic load rebalancing enabled, the
/// coordinator quiesces the bus, installs a new partition-map generation,
/// and moves RQI cell state between partitions mid-run. The fence rides
/// the same bus/RPC surface as normal traffic, so lock-step, socket-bus,
/// and live remote services must still agree per tick — and all three
/// must install the identical sequence of generations (load planning uses
/// coordinator-side uplink counts, which are deployment-independent).
fn check_rebalance_cell(seed: u64, propagation: Propagation, partitions: usize, uds: bool) {
    let cfg = config(seed, propagation, partitions).with_rebalance_ticks(3);
    let (reference, reference_generation) = {
        let mut sim = MobiEyesSim::new(cfg.clone());
        let t = trace(&mut sim);
        (t, sim.cluster().map_generation())
    };
    assert!(
        reference_generation >= 1,
        "rebalance never installed a generation: seed={seed} p={partitions}"
    );
    let kind = if uds {
        TransportKind::Uds
    } else {
        TransportKind::Tcp
    };
    let mut socket_sim = MobiEyesSim::new(cfg.clone().with_transport(kind));
    let socket_bus = trace(&mut socket_sim);
    assert_eq!(
        socket_sim.cluster().map_generation(),
        reference_generation,
        "socket bus generation diverges: seed={seed} p={partitions}"
    );
    assert_traces_match(
        &format!("rebalance socket bus seed={seed} p={partitions} {propagation:?}"),
        &reference,
        &socket_bus,
    );
    let (remote, remote_digest, remote_generation) =
        remote_rebalance_trace(cfg.clone(), partitions, uds);
    assert_eq!(
        remote_generation, reference_generation,
        "remote generation diverges: seed={seed} p={partitions}"
    );
    assert_traces_match(
        &format!("rebalance remote seed={seed} p={partitions} {propagation:?}"),
        &reference,
        &remote,
    );
    let mut ref_sim = MobiEyesSim::new(cfg);
    for _ in 0..TICKS {
        ref_sim.step(true);
    }
    assert_eq!(
        ref_sim.result_digest(),
        remote_digest,
        "rebalance digest diverges: seed={seed} p={partitions} {propagation:?}"
    );
}

#[test]
fn eqp_matches_across_transports() {
    for &seed in &[41u64, 42] {
        for &partitions in &[1usize, 2, 4] {
            check_cell(seed, Propagation::Eager, partitions, seed % 2 == 0);
        }
    }
}

#[test]
fn lqp_matches_across_transports() {
    for &seed in &[41u64, 42] {
        for &partitions in &[1usize, 2, 4] {
            check_cell(seed, Propagation::Lazy, partitions, seed % 2 == 1);
        }
    }
}

#[test]
fn rebalance_matches_across_transports() {
    for &seed in &[41u64, 42] {
        for &partitions in &[2usize, 4] {
            check_rebalance_cell(seed, Propagation::Eager, partitions, seed % 2 == 0);
        }
    }
    // One lazy cell: the fence must also preserve LQP's deferred state.
    check_rebalance_cell(41, Propagation::Lazy, 4, true);
}
