//! Random-waypoint mobility: trajectory sanity plus end-to-end protocol
//! accuracy under the alternative model.

use mobieyes_sim::{MobiEyesSim, Mobility, MobilityKind, SimConfig, Workload};

#[test]
fn waypoint_trajectories_stay_in_bounds_and_turn() {
    let c = SimConfig::small_test(61).with_mobility(MobilityKind::RandomWaypoint);
    let w = Workload::generate(&c);
    let mut m = Mobility::with_kind(&w, 0, c.time_step, c.seed, MobilityKind::RandomWaypoint);
    let mut total_turns = 0usize;
    for _ in 0..300 {
        m.step();
        total_turns += m.changed_velocity.len();
        for p in &m.positions {
            assert!(w.universe.contains_point(*p), "escaped: {p:?}");
        }
        for (v, &ms) in m.velocities.iter().zip(&m.max_speeds) {
            assert!(v.norm() <= ms + 1e-12);
        }
    }
    // Over 300 steps on a 100-mile square, plenty of waypoints are reached.
    assert!(
        total_turns > m.len(),
        "objects never turned ({total_turns} turns)"
    );
}

#[test]
fn waypoint_trace_is_deterministic() {
    let c = SimConfig::small_test(62);
    let w = Workload::generate(&c);
    let mut a = Mobility::with_kind(&w, 0, 30.0, 7, MobilityKind::RandomWaypoint);
    let mut b = Mobility::with_kind(&w, 0, 30.0, 7, MobilityKind::RandomWaypoint);
    for _ in 0..50 {
        a.step();
        b.step();
    }
    assert_eq!(a.positions, b.positions);
}

#[test]
fn protocol_stays_accurate_under_waypoint_mobility() {
    let eager =
        MobiEyesSim::new(SimConfig::small_test(63).with_mobility(MobilityKind::RandomWaypoint))
            .run();
    assert!(
        eager.avg_result_error < 0.15,
        "EQP error {} under random waypoint",
        eager.avg_result_error
    );
    // Dead reckoning still pays off: straight segments mean few reports.
    assert!(eager.msgs_per_second > 0.0);
}
