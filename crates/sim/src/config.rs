//! Simulation parameters (Table 1 of the paper).

use crate::mobility::MobilityKind;
use mobieyes_core::Propagation;

/// Backend for the cluster tier's inter-server bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Deterministic in-memory lock-step bus (the default; byte-identical
    /// to the single server at any partition count).
    #[default]
    Lockstep,
    /// Loopback TCP socket: every bus frame crosses the kernel with real
    /// length-prefixed framing.
    Tcp,
    /// Loopback Unix-domain socket; same framing as TCP.
    Uds,
}

impl TransportKind {
    /// Parses `"lockstep"`, `"tcp"` or `"uds"` (case-insensitive).
    pub fn parse(s: &str) -> Result<TransportKind, ConfigError> {
        match s.to_ascii_lowercase().as_str() {
            "lockstep" => Ok(TransportKind::Lockstep),
            "tcp" => Ok(TransportKind::Tcp),
            "uds" | "unix" => Ok(TransportKind::Uds),
            other => Err(ConfigError(format!(
                "unknown transport {other:?} (expected lockstep, tcp or uds)"
            ))),
        }
    }

    /// The backend name (`"lockstep"`, `"tcp"`, `"uds"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::Lockstep => "lockstep",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the cluster tier brings a crashed partition's cells back into
/// service (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryKind {
    /// Reassign the dead partition's cells to the surviving neighbors
    /// under an epoch fence; the process stays dead (the default).
    #[default]
    Failover,
    /// Fail over first, then restart the partition and hand its original
    /// cell span back under a second fence.
    Respawn,
}

impl RecoveryKind {
    /// Parses `"failover"` or `"respawn"` (case-insensitive).
    pub fn parse(s: &str) -> Result<RecoveryKind, ConfigError> {
        match s.to_ascii_lowercase().as_str() {
            "failover" => Ok(RecoveryKind::Failover),
            "respawn" => Ok(RecoveryKind::Respawn),
            other => Err(ConfigError(format!(
                "unknown recovery mode {other:?} (expected failover or respawn)"
            ))),
        }
    }

    /// The mode name (`"failover"`, `"respawn"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryKind::Failover => "failover",
            RecoveryKind::Respawn => "respawn",
        }
    }
}

impl std::fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tick-engine variant driving the agent side of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Struct-of-arrays fast path (the default): cold agents — empty LQT,
    /// not focal, cell unchanged, nothing to deliver — are skipped from
    /// per-agent flag/cell/deadline vectors without touching their heap
    /// state. Protocol-identical to the seed engine (only wall-clock
    /// samples differ); falls back to the seed path per step whenever
    /// faults or churn are active.
    #[default]
    Soa,
    /// The original engine: every agent's motion and processing hooks run
    /// every tick.
    Seed,
}

impl EngineKind {
    /// Parses `"soa"` or `"seed"` (case-insensitive).
    pub fn parse(s: &str) -> Result<EngineKind, ConfigError> {
        match s.to_ascii_lowercase().as_str() {
            "soa" => Ok(EngineKind::Soa),
            "seed" => Ok(EngineKind::Seed),
            other => Err(ConfigError(format!(
                "unknown engine {other:?} (expected soa or seed)"
            ))),
        }
    }

    /// The engine name (`"soa"`, `"seed"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Soa => "soa",
            EngineKind::Seed => "seed",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejected simulation configuration: which knob, what value, and what
/// the validator expected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// All knobs of a simulation run. `Default` reproduces Table 1's default
/// column; the figure harnesses sweep individual fields.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every run with the same seed and parameters produces
    /// bit-identical traces and metrics.
    pub seed: u64,
    /// Time step `ts` in seconds (Table 1: 30 s).
    pub time_step: f64,
    /// Number of simulated time steps measured (after warm-up).
    pub ticks: usize,
    /// Warm-up steps excluded from metrics (query installation settles).
    pub warmup_ticks: usize,
    /// Grid cell side length α in miles (Table 1: 5, range 0.5–16).
    pub alpha: f64,
    /// Number of moving objects (Table 1: 10 000).
    pub num_objects: usize,
    /// Number of moving queries (Table 1: 1 000).
    pub num_queries: usize,
    /// Objects changing velocity vector per time step (Table 1: 1 000).
    pub objects_changing_velocity: usize,
    /// Area of the (square) universe of discourse in square miles
    /// (Table 1: 100 000).
    pub area: f64,
    /// Base station side length in miles (Table 1: 10, range 5–80).
    pub alen: f64,
    /// Query radius means in miles, zipf-ordered (Table 1: {3,2,1,4,5}).
    pub radius_means: Vec<f64>,
    /// Zipf parameter for radius means and speed classes (paper: 0.8).
    pub zipf_param: f64,
    /// Multiplier applied to every query radius (Figure 12's radius
    /// factor; 1.0 elsewhere).
    pub radius_factor: f64,
    /// Query filter selectivity (Table 1: 0.75).
    pub selectivity: f64,
    /// Object maximum speed classes in miles/hour, zipf-ordered
    /// (Table 1: {100, 50, 150, 200, 250}).
    pub speed_classes_mph: Vec<f64>,
    /// Dead-reckoning threshold Δ in miles (see DESIGN.md: chosen so every
    /// simulated velocity reset triggers a report on the next step).
    pub delta: f64,
    /// MobiEyes propagation mode.
    pub propagation: Propagation,
    /// MobiEyes query grouping optimization.
    pub grouping: bool,
    /// MobiEyes safe-period optimization.
    pub safe_period: bool,
    /// Trajectory generator (paper's velocity-reset model by default).
    pub mobility: MobilityKind,
    /// When set, query focal objects are drawn uniformly from the first
    /// `k` objects only, skewing the query-per-focal distribution (used by
    /// the grouping experiments; `None` = uniform over all objects, the
    /// paper's default).
    pub focal_pool: Option<usize>,
    /// Worker threads for the parallel tick engine. `0` (the default)
    /// means auto: the `MOBIEYES_THREADS` environment variable if set,
    /// otherwise the machine's available parallelism. Results are
    /// byte-identical at every thread count (see
    /// [`resolved_threads`](Self::resolved_threads)).
    pub threads: usize,
    /// Probability that an uplink message is dropped ([0, 1]; 0 = off).
    pub uplink_drop: f64,
    /// Probability that a downlink message is dropped ([0, 1]; 0 = off).
    pub downlink_drop: f64,
    /// Probability that a delivered message (either direction) is
    /// duplicated ([0, 1]; 0 = off).
    pub dup_rate: f64,
    /// Fraction of objects that experience one offline window during the
    /// faulty phase of the run ([0, 1]; 0 = no churn).
    pub churn_rate: f64,
    /// Focal-object lease duration in ticks; 0 disables the
    /// fault-tolerance layer (leases, heartbeats, soft-state refresh).
    /// Heartbeats fire every `max(1, lease_ticks / 2)` ticks.
    pub lease_ticks: usize,
    /// Server partitions for the grid-sharded cluster tier. `0` (the
    /// default) means auto: the `MOBIEYES_PARTITIONS` environment variable
    /// if set, otherwise 1. A resolved count of 1 runs the plain
    /// single-server path; results are byte-identical at every partition
    /// count (see [`resolved_partitions`](Self::resolved_partitions)).
    pub partitions: usize,
    /// Rebalance cadence for the cluster tier: recompute the partition
    /// map from observed load every `n` ticks. `0` (the default) means
    /// auto: the `MOBIEYES_REBALANCE_TICKS` environment variable if set,
    /// otherwise off. Ignored on the single-server path. Rebalancing
    /// never changes query results — only the load split (see
    /// [`resolved_rebalance_ticks`](Self::resolved_rebalance_ticks)).
    pub rebalance_ticks: usize,
    /// Inter-server bus backend for the cluster tier. `None` (the
    /// default) means auto: the `MOBIEYES_TRANSPORT` environment variable
    /// if set, otherwise lock-step. Ignored on the single-server path;
    /// results are identical on every backend (see
    /// [`resolved_transport`](Self::resolved_transport)).
    pub transport: Option<TransportKind>,
    /// Agent tick-engine variant. `None` (the default) means auto: the
    /// `MOBIEYES_ENGINE` environment variable if set, otherwise the
    /// struct-of-arrays fast path. Results are protocol-identical on
    /// either engine (see [`resolved_engine`](Self::resolved_engine)).
    pub engine: Option<EngineKind>,
    /// Tick at which the crash-injection plan kills partitions (once per
    /// run). `0` (the default) means auto: the
    /// `MOBIEYES_PARTITION_CRASH_TICKS` environment variable if set,
    /// otherwise off. Victims are drawn deterministically from the seed;
    /// partition 0 (the epoch anchor) is never chosen. Requires the
    /// cluster tier (see
    /// [`resolved_partition_crash_ticks`](Self::resolved_partition_crash_ticks)).
    pub partition_crash_ticks: usize,
    /// Partitions killed at the crash tick. `0` (the default) means auto:
    /// the `MOBIEYES_PARTITION_CRASH_KILLS` environment variable if set,
    /// otherwise 1. Clamped to `partitions - 1` so at least one partition
    /// survives (see
    /// [`resolved_partition_crash_kills`](Self::resolved_partition_crash_kills)).
    pub partition_crash_kills: usize,
    /// Recovery mode for crashed partitions. `None` (the default) means
    /// auto: the `MOBIEYES_RECOVERY` environment variable if set,
    /// otherwise failover (see
    /// [`resolved_recovery`](Self::resolved_recovery)).
    pub recovery: Option<RecoveryKind>,
    /// Root directory of the durable trajectory logs (`<dir>/p<N>` per
    /// partition). `None` (the default) means auto: the
    /// `MOBIEYES_STORE_DIR` environment variable if set, otherwise no
    /// persistence (see [`resolved_store_dir`](Self::resolved_store_dir)).
    /// Existing logs under the directory are replayed into the server
    /// tier at build — point a fresh run at a fresh directory.
    pub store_dir: Option<std::path::PathBuf>,
    /// Checkpoint cadence in ticks for the durable logs (snapshot +
    /// segment GC; this is what bounds log growth). `0` (the default)
    /// means auto: the `MOBIEYES_STORE_CHECKPOINT_TICKS` environment
    /// variable if set, otherwise no periodic checkpoints (see
    /// [`resolved_store_checkpoint_ticks`](Self::resolved_store_checkpoint_ticks)).
    pub store_checkpoint_ticks: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x4D6F6269_45796573, // "MobiEyes"
            time_step: 30.0,
            ticks: 40,
            warmup_ticks: 5,
            alpha: 5.0,
            num_objects: 10_000,
            num_queries: 1_000,
            objects_changing_velocity: 1_000,
            area: 100_000.0,
            alen: 10.0,
            radius_means: vec![3.0, 2.0, 1.0, 4.0, 5.0],
            zipf_param: 0.8,
            radius_factor: 1.0,
            selectivity: 0.75,
            speed_classes_mph: vec![100.0, 50.0, 150.0, 200.0, 250.0],
            delta: 0.2,
            propagation: Propagation::Eager,
            grouping: false,
            safe_period: false,
            mobility: MobilityKind::default(),
            focal_pool: None,
            threads: 0,
            uplink_drop: 0.0,
            downlink_drop: 0.0,
            dup_rate: 0.0,
            churn_rate: 0.0,
            lease_ticks: 0,
            partitions: 0,
            rebalance_ticks: 0,
            transport: None,
            engine: None,
            partition_crash_ticks: 0,
            partition_crash_kills: 0,
            recovery: None,
            store_dir: None,
            store_checkpoint_ticks: 0,
        }
    }
}

impl SimConfig {
    /// Starts a validated fluent builder from the Table 1 defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Side length of the square universe of discourse, miles.
    pub fn side(&self) -> f64 {
        self.area.sqrt()
    }

    /// A small configuration for tests: few objects, small area, fast.
    pub fn small_test(seed: u64) -> Self {
        SimConfig {
            seed,
            ticks: 15,
            warmup_ticks: 3,
            num_objects: 300,
            num_queries: 30,
            objects_changing_velocity: 30,
            area: 10_000.0, // 100 x 100 miles
            ..SimConfig::default()
        }
    }

    /// Builder-style helpers for parameter sweeps.
    pub fn with_queries(mut self, n: usize) -> Self {
        self.num_queries = n;
        self
    }

    pub fn with_objects(mut self, n: usize) -> Self {
        self.num_objects = n;
        self
    }

    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    pub fn with_alen(mut self, alen: f64) -> Self {
        self.alen = alen;
        self
    }

    pub fn with_nmo(mut self, nmo: usize) -> Self {
        self.objects_changing_velocity = nmo;
        self
    }

    pub fn with_propagation(mut self, p: Propagation) -> Self {
        self.propagation = p;
        self
    }

    pub fn with_grouping(mut self, on: bool) -> Self {
        self.grouping = on;
        self
    }

    pub fn with_safe_period(mut self, on: bool) -> Self {
        self.safe_period = on;
        self
    }

    pub fn with_radius_factor(mut self, f: f64) -> Self {
        self.radius_factor = f;
        self
    }

    pub fn with_focal_pool(mut self, k: usize) -> Self {
        self.focal_pool = Some(k);
        self
    }

    pub fn with_mobility(mut self, kind: MobilityKind) -> Self {
        self.mobility = kind;
        self
    }

    pub fn with_lease_ticks(mut self, n: usize) -> Self {
        self.lease_ticks = n;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    pub fn with_rebalance_ticks(mut self, n: usize) -> Self {
        self.rebalance_ticks = n;
        self
    }

    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = Some(t);
        self
    }

    pub fn with_engine(mut self, e: EngineKind) -> Self {
        self.engine = Some(e);
        self
    }

    pub fn with_partition_crash_ticks(mut self, tick: usize) -> Self {
        self.partition_crash_ticks = tick;
        self
    }

    pub fn with_partition_crash_kills(mut self, kills: usize) -> Self {
        self.partition_crash_kills = kills;
        self
    }

    pub fn with_recovery(mut self, r: RecoveryKind) -> Self {
        self.recovery = Some(r);
        self
    }

    pub fn with_store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    pub fn with_store_checkpoint_ticks(mut self, n: usize) -> Self {
        self.store_checkpoint_ticks = n;
        self
    }

    /// Resolves the effective worker-thread count: an explicit
    /// `threads > 0` wins; otherwise a positive `MOBIEYES_THREADS`
    /// environment variable; otherwise the machine's available
    /// parallelism. Always at least 1.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(v) = std::env::var("MOBIEYES_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolves the effective server-partition count: an explicit
    /// `partitions > 0` wins; otherwise a positive `MOBIEYES_PARTITIONS`
    /// environment variable; otherwise 1 (the single-server path).
    pub fn resolved_partitions(&self) -> usize {
        if self.partitions > 0 {
            return self.partitions;
        }
        if let Ok(v) = std::env::var("MOBIEYES_PARTITIONS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        1
    }

    /// Resolves the effective rebalance cadence (in ticks): an explicit
    /// `rebalance_ticks > 0` wins; otherwise a positive
    /// `MOBIEYES_REBALANCE_TICKS` environment variable; otherwise 0
    /// (rebalancing off).
    pub fn resolved_rebalance_ticks(&self) -> usize {
        if self.rebalance_ticks > 0 {
            return self.rebalance_ticks;
        }
        if let Ok(v) = std::env::var("MOBIEYES_REBALANCE_TICKS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        0
    }

    /// Resolves the effective bus backend: an explicit `transport` wins;
    /// otherwise a valid `MOBIEYES_TRANSPORT` environment variable;
    /// otherwise lock-step.
    pub fn resolved_transport(&self) -> TransportKind {
        if let Some(t) = self.transport {
            return t;
        }
        if let Ok(v) = std::env::var("MOBIEYES_TRANSPORT") {
            if let Ok(t) = TransportKind::parse(&v) {
                return t;
            }
        }
        TransportKind::default()
    }

    /// Resolves the effective agent tick engine: an explicit `engine`
    /// wins; otherwise a valid `MOBIEYES_ENGINE` environment variable;
    /// otherwise the struct-of-arrays fast path.
    pub fn resolved_engine(&self) -> EngineKind {
        if let Some(e) = self.engine {
            return e;
        }
        if let Ok(v) = std::env::var("MOBIEYES_ENGINE") {
            if let Ok(e) = EngineKind::parse(&v) {
                return e;
            }
        }
        EngineKind::default()
    }

    /// Resolves the crash-injection tick: an explicit
    /// `partition_crash_ticks > 0` wins; otherwise a positive
    /// `MOBIEYES_PARTITION_CRASH_TICKS` environment variable; otherwise 0
    /// (crash injection off).
    pub fn resolved_partition_crash_ticks(&self) -> usize {
        if self.partition_crash_ticks > 0 {
            return self.partition_crash_ticks;
        }
        if let Ok(v) = std::env::var("MOBIEYES_PARTITION_CRASH_TICKS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        0
    }

    /// Resolves the number of partitions killed at the crash tick: an
    /// explicit `partition_crash_kills > 0` wins; otherwise a positive
    /// `MOBIEYES_PARTITION_CRASH_KILLS` environment variable; otherwise 1.
    /// The crash plan additionally clamps the count to `partitions - 1` so
    /// at least one partition survives.
    pub fn resolved_partition_crash_kills(&self) -> usize {
        if self.partition_crash_kills > 0 {
            return self.partition_crash_kills;
        }
        if let Ok(v) = std::env::var("MOBIEYES_PARTITION_CRASH_KILLS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        1
    }

    /// Resolves the crash-recovery mode: an explicit `recovery` wins;
    /// otherwise a valid `MOBIEYES_RECOVERY` environment variable;
    /// otherwise failover.
    pub fn resolved_recovery(&self) -> RecoveryKind {
        if let Some(r) = self.recovery {
            return r;
        }
        if let Ok(v) = std::env::var("MOBIEYES_RECOVERY") {
            if let Ok(r) = RecoveryKind::parse(&v) {
                return r;
            }
        }
        RecoveryKind::default()
    }

    /// Resolves the durable-log root directory: an explicit `store_dir`
    /// wins; otherwise a non-empty `MOBIEYES_STORE_DIR` environment
    /// variable; otherwise `None` (persistence off). An explicitly empty
    /// path (`with_store_dir("")`) pins persistence OFF even when the
    /// environment variable is set — drivers that run a reference twin
    /// in the same process use it so both deployments never share (or
    /// accidentally inherit) a log directory.
    pub fn resolved_store_dir(&self) -> Option<std::path::PathBuf> {
        if let Some(d) = &self.store_dir {
            if d.as_os_str().is_empty() {
                return None;
            }
            return Some(d.clone());
        }
        if let Ok(v) = std::env::var("MOBIEYES_STORE_DIR") {
            if !v.is_empty() {
                return Some(std::path::PathBuf::from(v));
            }
        }
        None
    }

    /// Resolves the checkpoint cadence (in ticks) for the durable logs:
    /// an explicit `store_checkpoint_ticks > 0` wins; otherwise a
    /// positive `MOBIEYES_STORE_CHECKPOINT_TICKS` environment variable;
    /// otherwise 0 (periodic checkpoints off).
    pub fn resolved_store_checkpoint_ticks(&self) -> usize {
        if self.store_checkpoint_ticks > 0 {
            return self.store_checkpoint_ticks;
        }
        if let Ok(v) = std::env::var("MOBIEYES_STORE_CHECKPOINT_TICKS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        0
    }

    /// Number of grid cells the run's universe decomposes into, matching
    /// `Grid::new(universe, alpha)` for the square universe the workload
    /// builds (`ceil(side/alpha)²`).
    pub fn grid_cells(&self) -> usize {
        let cols = (self.side() / self.alpha).ceil() as usize;
        cols * cols
    }

    /// Total measured duration in seconds.
    pub fn measured_seconds(&self) -> f64 {
        self.ticks as f64 * self.time_step
    }
}

/// Fluent, validating construction of [`SimConfig`].
///
/// Unlike the raw struct (whose fields remain public for sweeps), the
/// builder rejects configurations the simulator cannot meaningfully run:
/// non-positive α, zero objects, a non-positive radius factor, and the
/// analogous degenerate values for the remaining knobs.
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Starts from an existing configuration instead of the defaults.
    pub fn from_config(config: SimConfig) -> Self {
        SimConfigBuilder { config }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    pub fn time_step(mut self, seconds: f64) -> Self {
        self.config.time_step = seconds;
        self
    }

    pub fn ticks(mut self, ticks: usize) -> Self {
        self.config.ticks = ticks;
        self
    }

    pub fn warmup_ticks(mut self, ticks: usize) -> Self {
        self.config.warmup_ticks = ticks;
        self
    }

    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    pub fn objects(mut self, n: usize) -> Self {
        self.config.num_objects = n;
        self
    }

    pub fn queries(mut self, n: usize) -> Self {
        self.config.num_queries = n;
        self
    }

    pub fn objects_changing_velocity(mut self, n: usize) -> Self {
        self.config.objects_changing_velocity = n;
        self
    }

    pub fn area(mut self, square_miles: f64) -> Self {
        self.config.area = square_miles;
        self
    }

    pub fn alen(mut self, miles: f64) -> Self {
        self.config.alen = miles;
        self
    }

    pub fn radius_factor(mut self, factor: f64) -> Self {
        self.config.radius_factor = factor;
        self
    }

    pub fn selectivity(mut self, s: f64) -> Self {
        self.config.selectivity = s;
        self
    }

    pub fn delta(mut self, miles: f64) -> Self {
        self.config.delta = miles;
        self
    }

    pub fn propagation(mut self, p: Propagation) -> Self {
        self.config.propagation = p;
        self
    }

    pub fn grouping(mut self, on: bool) -> Self {
        self.config.grouping = on;
        self
    }

    pub fn safe_period(mut self, on: bool) -> Self {
        self.config.safe_period = on;
        self
    }

    pub fn mobility(mut self, kind: MobilityKind) -> Self {
        self.config.mobility = kind;
        self
    }

    pub fn focal_pool(mut self, k: usize) -> Self {
        self.config.focal_pool = Some(k);
        self
    }

    /// Worker threads for the parallel tick engine; `0` = auto (see
    /// [`SimConfig::resolved_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Uplink drop probability ([0, 1]).
    pub fn uplink_drop(mut self, p: f64) -> Self {
        self.config.uplink_drop = p;
        self
    }

    /// Downlink drop probability ([0, 1]).
    pub fn downlink_drop(mut self, p: f64) -> Self {
        self.config.downlink_drop = p;
        self
    }

    /// Duplication probability for delivered messages ([0, 1]).
    pub fn dup_rate(mut self, p: f64) -> Self {
        self.config.dup_rate = p;
        self
    }

    /// Fraction of objects given an offline window ([0, 1]).
    pub fn churn_rate(mut self, p: f64) -> Self {
        self.config.churn_rate = p;
        self
    }

    /// Focal-object lease duration in ticks (0 = fault tolerance off).
    pub fn lease_ticks(mut self, ticks: usize) -> Self {
        self.config.lease_ticks = ticks;
        self
    }

    /// Server partitions for the sharded cluster tier; `0` = auto (see
    /// [`SimConfig::resolved_partitions`]).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Rebalance cadence in ticks for the cluster tier; `0` = auto (see
    /// [`SimConfig::resolved_rebalance_ticks`]).
    pub fn rebalance_ticks(mut self, ticks: usize) -> Self {
        self.config.rebalance_ticks = ticks;
        self
    }

    /// Inter-server bus backend; unset = auto (see
    /// [`SimConfig::resolved_transport`]).
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.config.transport = Some(t);
        self
    }

    /// Agent tick-engine variant; unset = auto (see
    /// [`SimConfig::resolved_engine`]).
    pub fn engine(mut self, e: EngineKind) -> Self {
        self.config.engine = Some(e);
        self
    }

    /// Tick at which the crash plan kills partitions; `0` = auto (see
    /// [`SimConfig::resolved_partition_crash_ticks`]).
    pub fn partition_crash_ticks(mut self, tick: usize) -> Self {
        self.config.partition_crash_ticks = tick;
        self
    }

    /// Partitions killed at the crash tick; `0` = auto (see
    /// [`SimConfig::resolved_partition_crash_kills`]).
    pub fn partition_crash_kills(mut self, kills: usize) -> Self {
        self.config.partition_crash_kills = kills;
        self
    }

    /// Crash-recovery mode; unset = auto (see
    /// [`SimConfig::resolved_recovery`]).
    pub fn recovery(mut self, r: RecoveryKind) -> Self {
        self.config.recovery = Some(r);
        self
    }

    /// Durable-log root directory; unset = auto (see
    /// [`SimConfig::resolved_store_dir`]).
    pub fn store_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.store_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence for the durable logs; `0` = auto (see
    /// [`SimConfig::resolved_store_checkpoint_ticks`]).
    pub fn store_checkpoint_ticks(mut self, ticks: usize) -> Self {
        self.config.store_checkpoint_ticks = ticks;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        // Written to reject NaN along with non-positive values.
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        let err = |msg: String| Err(ConfigError(msg));
        let c = self.config;
        if !positive(c.alpha) {
            return err(format!("alpha must be > 0 (got {})", c.alpha));
        }
        if c.num_objects == 0 {
            return err("num_objects must be > 0".to_string());
        }
        if !positive(c.radius_factor) {
            return err(format!(
                "radius_factor must be > 0 (got {})",
                c.radius_factor
            ));
        }
        if !positive(c.time_step) {
            return err(format!("time_step must be > 0 (got {})", c.time_step));
        }
        if !positive(c.area) {
            return err(format!("area must be > 0 (got {})", c.area));
        }
        if !positive(c.alen) {
            return err(format!("alen must be > 0 (got {})", c.alen));
        }
        if !positive(c.delta) {
            return err(format!("delta must be > 0 (got {})", c.delta));
        }
        if !(0.0..=1.0).contains(&c.selectivity) {
            return err(format!(
                "selectivity must be within [0, 1] (got {})",
                c.selectivity
            ));
        }
        if c.ticks == 0 {
            return err("ticks must be > 0".to_string());
        }
        if c.radius_means.is_empty() || c.speed_classes_mph.is_empty() {
            return err("radius_means and speed_classes_mph must be non-empty".to_string());
        }
        if c.focal_pool == Some(0) {
            return err("focal_pool must be > 0 when set".to_string());
        }
        for (name, v) in [
            ("uplink_drop", c.uplink_drop),
            ("downlink_drop", c.downlink_drop),
            ("dup_rate", c.dup_rate),
            ("churn_rate", c.churn_rate),
        ] {
            // `!(..).contains()` also rejects NaN.
            if !(0.0..=1.0).contains(&v) {
                return err(format!("{name} must be within [0, 1] (got {v})"));
            }
        }
        // The cluster tier needs at least one grid cell per partition;
        // catching this here turns a `PartitionMap::contiguous` panic
        // deep inside the run into a clear configuration error.
        let cells = c.grid_cells();
        let partitions = c.resolved_partitions();
        if partitions > cells {
            return err(format!(
                "partitions ({partitions}) exceeds the grid's cell count ({cells}); \
                 shrink --partitions (or MOBIEYES_PARTITIONS), lower alpha, or grow the area"
            ));
        }
        // Crash injection needs a survivor to fail over to; the plan also
        // clamps, but an explicit impossible request is a config error.
        if c.partition_crash_ticks > 0 && partitions < 2 {
            return err(format!(
                "partition_crash_ticks requires at least 2 partitions (got {partitions})"
            ));
        }
        if c.partition_crash_kills > 0 && c.partition_crash_kills >= partitions {
            return err(format!(
                "partition_crash_kills ({}) must leave a survivor out of {partitions} partitions",
                c.partition_crash_kills
            ));
        }
        Ok(c)
    }

    /// [`build`](Self::build) that panics on invalid input — for the
    /// figure binaries, where a bad sweep value is a programming error.
    pub fn build_or_panic(self) -> SimConfig {
        self.build()
            .unwrap_or_else(|e| panic!("invalid SimConfig: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = SimConfig::default();
        assert_eq!(c.time_step, 30.0);
        assert_eq!(c.alpha, 5.0);
        assert_eq!(c.num_objects, 10_000);
        assert_eq!(c.num_queries, 1_000);
        assert_eq!(c.objects_changing_velocity, 1_000);
        assert_eq!(c.area, 100_000.0);
        assert_eq!(c.alen, 10.0);
        assert_eq!(c.radius_means, vec![3.0, 2.0, 1.0, 4.0, 5.0]);
        assert_eq!(c.selectivity, 0.75);
        assert_eq!(c.speed_classes_mph, vec![100.0, 50.0, 150.0, 200.0, 250.0]);
        assert!((c.side() - 316.227766).abs() < 1e-6);
    }

    #[test]
    fn builders_chain() {
        let c = SimConfig::small_test(1)
            .with_queries(5)
            .with_alpha(2.0)
            .with_nmo(7);
        assert_eq!(c.num_queries, 5);
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.objects_changing_velocity, 7);
    }

    #[test]
    fn measured_seconds() {
        let c = SimConfig {
            ticks: 10,
            time_step: 30.0,
            ..SimConfig::default()
        };
        assert_eq!(c.measured_seconds(), 300.0);
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = SimConfig::builder()
            .seed(7)
            .alpha(2.0)
            .objects(500)
            .queries(50)
            .radius_factor(1.5)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.num_objects, 500);
        assert_eq!(c.num_queries, 50);
        assert_eq!(c.radius_factor, 1.5);
    }

    #[test]
    fn builder_rejects_degenerate_values() {
        assert!(SimConfig::builder().alpha(0.0).build().is_err());
        assert!(SimConfig::builder().alpha(-1.0).build().is_err());
        assert!(SimConfig::builder().alpha(f64::NAN).build().is_err());
        assert!(SimConfig::builder().objects(0).build().is_err());
        assert!(SimConfig::builder().radius_factor(0.0).build().is_err());
        assert!(SimConfig::builder().radius_factor(-2.0).build().is_err());
        assert!(SimConfig::builder().time_step(0.0).build().is_err());
        assert!(SimConfig::builder().selectivity(1.5).build().is_err());
        assert!(SimConfig::builder().focal_pool(0).build().is_err());
        assert!(SimConfig::builder().uplink_drop(1.5).build().is_err());
        assert!(SimConfig::builder().downlink_drop(-0.1).build().is_err());
        assert!(SimConfig::builder().dup_rate(f64::NAN).build().is_err());
        assert!(SimConfig::builder().churn_rate(2.0).build().is_err());
    }

    #[test]
    fn builder_accepts_fault_knobs() {
        let c = SimConfig::builder()
            .uplink_drop(0.3)
            .downlink_drop(0.2)
            .dup_rate(0.1)
            .churn_rate(0.15)
            .lease_ticks(6)
            .build()
            .unwrap();
        assert_eq!(c.uplink_drop, 0.3);
        assert_eq!(c.downlink_drop, 0.2);
        assert_eq!(c.dup_rate, 0.1);
        assert_eq!(c.churn_rate, 0.15);
        assert_eq!(c.lease_ticks, 6);
    }

    #[test]
    fn thread_resolution_precedence() {
        // An explicit count always wins.
        assert_eq!(SimConfig::default().with_threads(3).resolved_threads(), 3);
        assert_eq!(SimConfig::builder().threads(2).build().unwrap().threads, 2);
        // Auto resolves to something positive whatever the environment.
        assert!(SimConfig::default().resolved_threads() >= 1);
    }

    #[test]
    fn partition_resolution_precedence() {
        // An explicit count always wins; auto defaults to 1 when the
        // environment doesn't say otherwise.
        assert_eq!(
            SimConfig::default()
                .with_partitions(4)
                .resolved_partitions(),
            4
        );
        assert_eq!(
            SimConfig::builder()
                .partitions(2)
                .build()
                .unwrap()
                .partitions,
            2
        );
        assert!(SimConfig::default().resolved_partitions() >= 1);
    }

    #[test]
    fn builder_rejects_more_partitions_than_cells() {
        // 100 mi² with α = 5 → a 2×2 grid of 4 cells; 8 partitions can
        // never tile it and used to panic deep inside
        // `PartitionMap::contiguous`.
        let err = SimConfig::builder()
            .area(100.0)
            .alpha(5.0)
            .partitions(8)
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("exceeds the grid's cell count"),
            "unhelpful message: {err}"
        );
        // The boundary case (one cell per partition) stays valid.
        assert!(SimConfig::builder()
            .area(100.0)
            .alpha(5.0)
            .partitions(4)
            .build()
            .is_ok());
    }

    #[test]
    fn rebalance_resolution_precedence() {
        assert_eq!(
            SimConfig::default()
                .with_rebalance_ticks(5)
                .resolved_rebalance_ticks(),
            5
        );
        assert_eq!(
            SimConfig::builder()
                .rebalance_ticks(3)
                .build()
                .unwrap()
                .rebalance_ticks,
            3
        );
        // Auto defaults to off (0) when the environment doesn't say
        // otherwise; the suite never sets MOBIEYES_REBALANCE_TICKS.
        assert_eq!(SimConfig::default().rebalance_ticks, 0);
    }

    #[test]
    fn transport_parses_and_resolves() {
        assert_eq!(TransportKind::parse("tcp").unwrap(), TransportKind::Tcp);
        assert_eq!(TransportKind::parse("UDS").unwrap(), TransportKind::Uds);
        assert_eq!(
            TransportKind::parse("lockstep").unwrap(),
            TransportKind::Lockstep
        );
        assert!(TransportKind::parse("carrier-pigeon").is_err());
        // Explicit choice wins over the environment.
        assert_eq!(
            SimConfig::default()
                .with_transport(TransportKind::Tcp)
                .resolved_transport(),
            TransportKind::Tcp
        );
        assert_eq!(
            SimConfig::builder()
                .transport(TransportKind::Uds)
                .build()
                .unwrap()
                .transport,
            Some(TransportKind::Uds)
        );
    }

    #[test]
    fn recovery_parses_and_resolves() {
        assert_eq!(
            RecoveryKind::parse("failover").unwrap(),
            RecoveryKind::Failover
        );
        assert_eq!(
            RecoveryKind::parse("RESPAWN").unwrap(),
            RecoveryKind::Respawn
        );
        assert!(RecoveryKind::parse("reboot").is_err());
        assert_eq!(
            SimConfig::default()
                .with_recovery(RecoveryKind::Respawn)
                .resolved_recovery(),
            RecoveryKind::Respawn
        );
        assert_eq!(
            SimConfig::builder()
                .recovery(RecoveryKind::Failover)
                .build()
                .unwrap()
                .recovery,
            Some(RecoveryKind::Failover)
        );
    }

    #[test]
    fn crash_knob_resolution_and_validation() {
        // Explicit values win; kills defaults to 1 when unset.
        let c = SimConfig::default()
            .with_partitions(4)
            .with_partition_crash_ticks(10)
            .with_partition_crash_kills(2);
        assert_eq!(c.resolved_partition_crash_ticks(), 10);
        assert_eq!(c.resolved_partition_crash_kills(), 2);
        assert_eq!(
            SimConfig::default().resolved_partition_crash_kills(),
            1,
            "auto kill count is one partition"
        );
        // Crashing a single-partition deployment is rejected, as is
        // killing every partition.
        assert!(SimConfig::builder()
            .partitions(1)
            .partition_crash_ticks(5)
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .partitions(4)
            .partition_crash_ticks(5)
            .partition_crash_kills(4)
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .partitions(4)
            .partition_crash_ticks(5)
            .partition_crash_kills(2)
            .recovery(RecoveryKind::Respawn)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_starts_from_existing_config() {
        let base = SimConfig::small_test(9);
        let c = SimConfigBuilder::from_config(base.clone())
            .queries(77)
            .build()
            .unwrap();
        assert_eq!(c.num_objects, base.num_objects);
        assert_eq!(c.num_queries, 77);
    }
}
