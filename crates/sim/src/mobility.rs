//! Mobility models.
//!
//! [`MobilityKind::VelocityReset`] is the paper's §5.1 model: "In every
//! time step we pick a number of objects at random and set their
//! normalized velocity vectors to a random direction, while setting their
//! velocity to a random value between zero and their maximum velocity. All
//! other objects ... continue their motion with their unchanged velocity
//! vectors." Objects reflect off the universe boundary (the paper leaves
//! boundary behaviour unspecified; reflection keeps the spatial density
//! uniform, which the uniform initial placement implies).
//!
//! [`MobilityKind::RandomWaypoint`] is the classic mobile-systems model:
//! each object repeatedly picks a uniform destination and a speed in
//! (0, max], travels there in a straight line, and immediately repicks.
//! It produces heading changes that are *correlated with position* (turns
//! happen at waypoints) rather than uniformly random — a harder, more
//! realistic stress for dead reckoning. Used by the mobility ablation.

use crate::rng::Rng;
use crate::workload::Workload;
use mobieyes_geo::{Point, Rect, Vec2};

/// Which trajectory generator drives the objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MobilityKind {
    /// The paper's model: `nmo` random velocity resets per time step.
    #[default]
    VelocityReset,
    /// Random waypoint: travel to a uniform destination, then repick.
    RandomWaypoint,
}

/// Deterministic shared mobility trace. Two `Mobility` instances built from
/// the same workload and seed produce identical trajectories, which is how
/// the harness feeds *paired* traces to MobiEyes and every baseline.
#[derive(Debug, Clone)]
pub struct Mobility {
    universe: Rect,
    rng: Rng,
    nmo: usize,
    time_step: f64,
    kind: MobilityKind,
    /// Current destination per object (random-waypoint only).
    waypoints: Vec<Point>,
    pub positions: Vec<Point>,
    pub velocities: Vec<Vec2>,
    pub max_speeds: Vec<f64>,
    /// Indices whose velocity vector changed in the latest step.
    pub changed_velocity: Vec<usize>,
}

impl Mobility {
    /// The paper's velocity-reset model.
    pub fn new(workload: &Workload, nmo: usize, time_step: f64, seed: u64) -> Self {
        Self::with_kind(workload, nmo, time_step, seed, MobilityKind::VelocityReset)
    }

    pub fn with_kind(
        workload: &Workload,
        nmo: usize,
        time_step: f64,
        seed: u64,
        kind: MobilityKind,
    ) -> Self {
        let mut rng = Rng::new(seed ^ 0x0B11_17E5);
        let n = workload.objects.len();
        let positions: Vec<Point> = workload.objects.iter().map(|o| o.initial_pos).collect();
        let max_speeds: Vec<f64> = workload.objects.iter().map(|o| o.max_speed).collect();
        let (velocities, waypoints) = match kind {
            MobilityKind::VelocityReset => {
                // Every object starts with a random heading and a speed
                // uniform in [0, max].
                let v = max_speeds
                    .iter()
                    .map(|&ms| {
                        let dir = Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU));
                        dir * rng.range(0.0, ms)
                    })
                    .collect();
                (v, Vec::new())
            }
            MobilityKind::RandomWaypoint => {
                let mut waypoints = Vec::with_capacity(n);
                let mut velocities = Vec::with_capacity(n);
                for i in 0..n {
                    let dest = Point::new(
                        rng.range(workload.universe.lx, workload.universe.hx()),
                        rng.range(workload.universe.ly, workload.universe.hy()),
                    );
                    let speed = rng
                        .range(0.0, max_speeds[i])
                        .max(1e-6 * max_speeds[i].max(1e-9));
                    velocities.push(positions[i].to(dest).normalized() * speed);
                    waypoints.push(dest);
                }
                (velocities, waypoints)
            }
        };
        Mobility {
            universe: workload.universe,
            rng,
            nmo: nmo.min(n),
            time_step,
            kind,
            waypoints,
            positions,
            velocities,
            max_speeds,
            changed_velocity: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Advances one time step under the configured model, then integrates
    /// all positions (reflecting at the universe boundary).
    pub fn step(&mut self) {
        self.changed_velocity.clear();
        let n = self.positions.len();
        match self.kind {
            MobilityKind::VelocityReset => {
                // Re-randomize nmo velocity vectors.
                for _ in 0..self.nmo {
                    let i = self.rng.below(n);
                    let dir = Vec2::from_angle(self.rng.range(0.0, std::f64::consts::TAU));
                    self.velocities[i] = dir * self.rng.range(0.0, self.max_speeds[i]);
                    self.changed_velocity.push(i);
                }
            }
            MobilityKind::RandomWaypoint => {
                // Objects reaching their waypoint this step pick a new one.
                for i in 0..n {
                    let remaining = self.positions[i].distance(self.waypoints[i]);
                    let stride = self.velocities[i].norm() * self.time_step;
                    if remaining <= stride {
                        // Arrive, then depart toward a fresh destination.
                        self.positions[i] = self.waypoints[i];
                        let dest = Point::new(
                            self.rng.range(self.universe.lx, self.universe.hx()),
                            self.rng.range(self.universe.ly, self.universe.hy()),
                        );
                        let speed = self
                            .rng
                            .range(0.0, self.max_speeds[i])
                            .max(1e-6 * self.max_speeds[i].max(1e-9));
                        self.velocities[i] = self.positions[i].to(dest).normalized() * speed;
                        self.waypoints[i] = dest;
                        self.changed_velocity.push(i);
                    }
                }
            }
        }
        let (lx, ly) = (self.universe.lx, self.universe.ly);
        let (hx, hy) = (self.universe.hx(), self.universe.hy());
        for i in 0..n {
            let mut p = self.positions[i] + self.velocities[i] * self.time_step;
            let v = &mut self.velocities[i];
            // Reflect off each wall (velocities are far too small to cross
            // the universe twice in one step).
            if p.x < lx {
                p.x = lx + (lx - p.x);
                v.x = -v.x;
            } else if p.x > hx {
                p.x = hx - (p.x - hx);
                v.x = -v.x;
            }
            if p.y < ly {
                p.y = ly + (ly - p.y);
                v.y = -v.y;
            } else if p.y > hy {
                p.y = hy - (p.y - hy);
                v.y = -v.y;
            }
            self.positions[i] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::workload::Workload;

    fn mobility(seed: u64) -> Mobility {
        let c = SimConfig::small_test(seed);
        let w = Workload::generate(&c);
        Mobility::new(&w, c.objects_changing_velocity, c.time_step, c.seed)
    }

    #[test]
    fn trace_is_deterministic() {
        let mut a = mobility(11);
        let mut b = mobility(11);
        for _ in 0..20 {
            a.step();
            b.step();
        }
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.velocities, b.velocities);
        assert_eq!(a.changed_velocity, b.changed_velocity);
    }

    #[test]
    fn objects_stay_inside_universe() {
        let mut m = mobility(12);
        let u = m.universe;
        for _ in 0..200 {
            m.step();
            for p in &m.positions {
                assert!(u.contains_point(*p), "object escaped to {p:?}");
            }
        }
    }

    #[test]
    fn speeds_never_exceed_max() {
        let mut m = mobility(13);
        for _ in 0..50 {
            m.step();
            for (v, &ms) in m.velocities.iter().zip(&m.max_speeds) {
                assert!(v.norm() <= ms + 1e-12);
            }
        }
    }

    #[test]
    fn nmo_velocity_changes_per_step() {
        let mut m = mobility(14);
        m.step();
        // nmo picks *with replacement*, so count <= nmo but close to it.
        assert!(m.changed_velocity.len() == 30);
    }

    #[test]
    fn objects_actually_move() {
        let mut m = mobility(15);
        let before = m.positions.clone();
        m.step();
        let moved = m
            .positions
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(**b) > 1e-9)
            .count();
        // Nearly every object has nonzero velocity.
        assert!(moved > m.len() * 8 / 10, "only {moved} moved");
    }

    #[test]
    fn reflection_reverses_velocity() {
        let c = SimConfig::small_test(16);
        let w = Workload::generate(&c);
        let mut m = Mobility::new(&w, 0, 30.0, 1);
        // Plant an object heading straight at the wall.
        m.positions[0] = Point::new(0.5, 50.0);
        m.velocities[0] = Vec2::new(-0.05, 0.0);
        m.step();
        assert!(m.positions[0].x >= 0.0);
        assert!(m.velocities[0].x > 0.0, "x velocity must flip");
    }
}
