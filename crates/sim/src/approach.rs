//! One entry point for every engine the evaluation compares.
//!
//! The figure harness and the CLI pick engines by name through
//! [`Approach`] instead of hand-written match arms over four driver
//! types. [`run_approach`] runs warm-up + measured ticks on the selected
//! engine and returns both the aggregated [`RunMetrics`] view and the raw
//! telemetry snapshot it was derived from.

use crate::central_run::{CentralKind, CentralSim, MessagingKind, MessagingModel};
use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::mobieyes_run::MobiEyesSim;
use mobieyes_core::Propagation;
use mobieyes_telemetry::{MetricsSnapshot, Telemetry};

/// Every engine of the paper's evaluation, selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// MobiEyes with eager query propagation.
    MobiEyesEqp,
    /// MobiEyes with lazy query propagation.
    MobiEyesLqp,
    /// Centralized: every object reports its position every tick.
    Naive,
    /// Centralized: dead-reckoned velocity reports (the paper's
    /// "central optimal" messaging lower bound).
    CentralOptimal,
    /// Centralized engine indexing objects in an R*-tree.
    ObjectIndex,
    /// Centralized engine indexing query regions in an R*-tree.
    QueryIndex,
}

impl Approach {
    /// All approaches, in the order the figures list them.
    pub const ALL: [Approach; 6] = [
        Approach::MobiEyesEqp,
        Approach::MobiEyesLqp,
        Approach::Naive,
        Approach::CentralOptimal,
        Approach::ObjectIndex,
        Approach::QueryIndex,
    ];

    /// The stable CLI / figure-series name.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::MobiEyesEqp => "mobieyes-eqp",
            Approach::MobiEyesLqp => "mobieyes-lqp",
            Approach::Naive => "naive",
            Approach::CentralOptimal => "central-optimal",
            Approach::ObjectIndex => "object-index",
            Approach::QueryIndex => "query-index",
        }
    }

    /// Parses a CLI name (the inverse of [`name`](Self::name)).
    pub fn from_name(name: &str) -> Option<Approach> {
        Approach::ALL.iter().copied().find(|a| a.name() == name)
    }
}

impl std::str::FromStr for Approach {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Approach::from_name(s).ok_or_else(|| {
            let names: Vec<&str> = Approach::ALL.iter().map(|a| a.name()).collect();
            format!(
                "unknown approach '{s}' (expected one of: {})",
                names.join(", ")
            )
        })
    }
}

/// Everything one engine run produces: the figure-level metrics view plus
/// the raw registry snapshot it was derived from (for export / debugging).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub approach: Approach,
    pub metrics: RunMetrics,
    pub snapshot: MetricsSnapshot,
    /// The cluster coordinator's private bus-sink snapshot (recovery and
    /// rebalance counters/events) on a partitioned MobiEyes run, `None`
    /// otherwise. Kept separate from `snapshot` so protocol equivalence
    /// comparisons stay deployment-shape independent; exporters may
    /// [`MetricsSnapshot::absorb`] it into the user-facing output.
    pub bus_snapshot: Option<MetricsSnapshot>,
}

/// Runs `approach` over `config` (warm-up + measured ticks) with a fresh
/// telemetry sink.
pub fn run_approach(config: SimConfig, approach: Approach) -> RunReport {
    run_approach_with(config, approach, Telemetry::new())
}

/// Like [`run_approach`] but recording into the injected sink (which is
/// reset when the measured window starts).
pub fn run_approach_with(config: SimConfig, approach: Approach, telemetry: Telemetry) -> RunReport {
    let mut bus_snapshot = None;
    let metrics = match approach {
        Approach::MobiEyesEqp => {
            let mut sim = MobiEyesSim::with_telemetry(config, telemetry.clone());
            let metrics = sim.run();
            bus_snapshot = sim.bus_snapshot();
            metrics
        }
        Approach::MobiEyesLqp => {
            let mut sim = MobiEyesSim::with_telemetry(
                config.with_propagation(Propagation::Lazy),
                telemetry.clone(),
            );
            let metrics = sim.run();
            bus_snapshot = sim.bus_snapshot();
            metrics
        }
        Approach::Naive => {
            MessagingModel::with_telemetry(config, MessagingKind::Naive, telemetry.clone()).run()
        }
        Approach::CentralOptimal => {
            MessagingModel::with_telemetry(config, MessagingKind::CentralOptimal, telemetry.clone())
                .run()
        }
        Approach::ObjectIndex => {
            CentralSim::with_telemetry(config, CentralKind::ObjectIndex, telemetry.clone()).run()
        }
        Approach::QueryIndex => {
            CentralSim::with_telemetry(config, CentralKind::QueryIndex, telemetry.clone()).run()
        }
    };
    RunReport {
        approach,
        metrics,
        snapshot: telemetry.snapshot(),
        bus_snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for a in Approach::ALL {
            assert_eq!(Approach::from_name(a.name()), Some(a));
            assert_eq!(a.name().parse::<Approach>().unwrap(), a);
        }
        assert!("mobieyes".parse::<Approach>().is_err());
    }

    #[test]
    fn every_approach_runs() {
        let config = SimConfig::small_test(61);
        for a in Approach::ALL {
            let report = run_approach(config.clone(), a);
            assert_eq!(report.approach, a);
            assert_eq!(report.metrics.label, a.name(), "label mismatch for {a:?}");
            assert_eq!(report.metrics.ticks, config.ticks);
        }
    }

    #[test]
    fn report_snapshot_matches_metrics() {
        let report = run_approach(SimConfig::small_test(62), Approach::MobiEyesEqp);
        assert!(report.metrics.msgs_per_second > 0.0);
        // The snapshot the metrics were derived from is exposed verbatim.
        let counted: u64 = ["net.uplink.msgs", "net.unicast.msgs", "net.broadcast.msgs"]
            .iter()
            .map(|k| report.snapshot.counter(k))
            .sum();
        let expect = report.metrics.msgs_per_second * report.metrics.duration_s;
        assert_eq!(counted as f64, expect);
    }
}
