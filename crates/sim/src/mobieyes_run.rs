//! The MobiEyes simulation driver: server + agents + network over a shared
//! mobility trace, with all the measurements of §5.

use crate::config::{EngineKind, RecoveryKind, SimConfig, TransportKind};
use crate::metrics::{sim_keys, RunMetrics};
use crate::mobility::Mobility;
use crate::soa::{
    self, AgentSoa, BcastClass, ShardScratch, SoaShard, FLAG_FOCAL, FLAG_LQT, FLAG_PENDING,
    FLAG_SHADOW,
};
use crate::truth::{result_error, GroundTruth};
use crate::workload::Workload;
use mobieyes_cluster::{ClusterServer, Envelope};
use mobieyes_core::object::agent_keys;
use mobieyes_core::server::Net;
use mobieyes_core::{
    Downlink, Filter, LogRecord, MovingObjectAgent, ObjectId, Propagation, Properties,
    ProtocolConfig, QueryId, Server,
};
use mobieyes_geo::{Grid, LinearMotion, Point, QueryRegion, Vec2};
use mobieyes_net::{
    BaseStationLayout, ChurnPlan, FaultPlan, FramedConn, NodeId, PartitionCrashPlan, RadioModel,
    SocketTransport, StationId,
};
use mobieyes_store::{self as store, Store, StoreConfig};
use mobieyes_telemetry::{EventKind, Phase, Telemetry};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The server tier behind a deployment: the plain single server, or the
/// grid-sharded cluster (`SimConfig::partitions` > 1). Both speak the same
/// agent-facing protocol over the same network; a resolved partition count
/// of 1 runs the single-server code path literally.
enum ServerTier {
    Single(Box<Server>),
    Cluster(Box<ClusterServer>),
}

impl ServerTier {
    fn install_query(
        &mut self,
        focal: ObjectId,
        region: QueryRegion,
        filter: Filter,
        net: &mut Net,
    ) -> QueryId {
        match self {
            ServerTier::Single(s) => s.install_query(focal, region, filter, net),
            ServerTier::Cluster(c) => c.install_query(focal, region, filter, net),
        }
    }

    fn heartbeat(&mut self, now: f64, net: &mut Net) {
        match self {
            ServerTier::Single(s) => s.heartbeat(now, net),
            ServerTier::Cluster(c) => c.heartbeat(now, net),
        }
    }

    fn tick(&mut self, net: &mut Net) {
        match self {
            ServerTier::Single(s) => s.tick(net),
            ServerTier::Cluster(c) => c.tick(net),
        }
    }

    fn query_result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        match self {
            ServerTier::Single(s) => s.query_result(qid),
            ServerTier::Cluster(c) => c.query_result(qid),
        }
    }

    /// Owned result fetch: works on every tier, including remote
    /// partitions that cannot hand out references into another process.
    fn query_result_owned(&self, qid: QueryId) -> Option<BTreeSet<ObjectId>> {
        match self {
            ServerTier::Single(s) => s.query_result(qid).cloned(),
            ServerTier::Cluster(c) => c.fetch_query_result(qid).map(|v| v.into_iter().collect()),
        }
    }

    /// Whether any partition is hosted out-of-process.
    fn is_remote(&self) -> bool {
        matches!(self, ServerTier::Cluster(c) if c.has_remote())
    }
}

/// A fresh, collision-free Unix-domain socket path for an in-process
/// loopback bus.
fn unique_bus_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mobieyes-bus-{}-{seq}.sock", std::process::id()))
}

/// A complete MobiEyes deployment under simulation.
///
/// The tick engine shards agents into contiguous index ranges, one per
/// worker thread (`SimConfig::threads`, 0 = auto). Each phase runs the
/// shards under `std::thread::scope`; every worker buffers its agents'
/// uplinks in a private per-shard network and its metrics in a per-shard
/// telemetry sink, and the coordinator merges both in ascending shard
/// (therefore node-id) order after the phase — so uplink queue order,
/// counters, histograms and the event log are byte-identical to the
/// sequential engine at any thread count. With one shard the same
/// buffer-and-merge path runs inline, without spawning.
pub struct MobiEyesSim {
    pub config: SimConfig,
    pub workload: Workload,
    mobility: Mobility,
    tier: ServerTier,
    net: Net,
    agents: Vec<MovingObjectAgent>,
    truth: GroundTruth,
    /// Query ids aligned with `workload.queries`.
    qids: Vec<QueryId>,
    tick_index: usize,
    inbox: Vec<Arc<Downlink>>,
    /// Shared instrumentation sink every component records into.
    telemetry: Telemetry,
    /// Station layout (cheap clone of the network's) for worker-side
    /// physical broadcast delivery.
    layout: BaseStationLayout,
    /// Agents `[s * shard_chunk, (s + 1) * shard_chunk)` belong to shard `s`.
    shard_chunk: usize,
    /// Per-shard uplink buffers. Their private telemetry is discarded:
    /// uplink traffic is metered exactly once, when the coordinator
    /// forwards buffered messages into the real network in shard order.
    shard_nets: Vec<Net>,
    /// Per-shard metric accumulators the agents record into; drained and
    /// merged into the shared sink once per phase.
    shard_sinks: Vec<Telemetry>,
    /// Deterministic object churn schedule (no-op by default). The
    /// schedule is a pure function of `(seed, oid)`, so it is identical
    /// at every thread count.
    churn: ChurnPlan,
    /// Tick at which the current churn plan was installed; the plan's
    /// windows are relative to it.
    churn_base: usize,
    /// Per-agent offline state: `Some(fresh)` while disconnected, where
    /// `fresh` says whether the rejoin loses local state (a crash).
    offline: Vec<Option<bool>>,
    /// Rejoins to perform this step (computed once per step, read by the
    /// motion phase): `Some(fresh)` triggers the reconnect handshake.
    rejoin_now: Vec<Option<bool>>,
    /// Agents to skip entirely this step (offline).
    skip_now: Vec<bool>,
    /// When set, mobility is frozen: objects stop moving but the protocol
    /// keeps running. Used to measure recovery convergence.
    frozen: bool,
    /// Rebalance cadence in ticks (0 = off); resolved once at build so
    /// the environment is read exactly once per run.
    rebalance_ticks: usize,
    /// Resolved tick engine: the struct-of-arrays fast path or the seed
    /// reference path (see [`crate::soa`] for the contract between them).
    engine: EngineKind,
    /// The universe grid (cheap clone of the protocol config's) for the
    /// fast engine's flat-cell computations.
    grid: Grid,
    /// Struct-of-arrays scheduling mirror + persistent phase scratch.
    soa: AgentSoa,
    /// Deterministic partition-crash schedule (no-op by default);
    /// resolved from the configuration at build, overridable for tests
    /// via [`set_crash_plan`](Self::set_crash_plan).
    crash_plan: PartitionCrashPlan,
    /// How a crashed partition's cells come back: failover only, or
    /// failover plus supervised respawn.
    recovery: RecoveryKind,
    /// Partitions awaiting respawn, with the tick at which to restart
    /// them (the failover fence runs first; the respawn fence follows).
    pending_respawn: Vec<(u32, usize)>,
    /// Out-of-process kill callback: terminates partition `p`'s child
    /// process so the coordinator's detection path sees a real death.
    crash_hook: Option<Box<dyn FnMut(u32)>>,
    /// Out-of-process respawn callback: restarts partition `p`'s child
    /// and returns a fresh hello-completed connection, or `None` to
    /// retry at the next tick boundary.
    respawn_hook: Option<Box<dyn FnMut(u32) -> Option<FramedConn>>>,
    /// Durable-log handle for the single-server tier; the cluster tier
    /// holds its own per-partition handles.
    store: Option<Store>,
    /// Root directory of the durable logs (`<root>/p<N>` per partition),
    /// kept for the single-tier crash-recovery drill.
    store_root: Option<std::path::PathBuf>,
    /// Checkpoint cadence in ticks (0 = off); resolved once at build so
    /// the environment is read exactly once per run.
    store_checkpoint_ticks: usize,
}

/// Ticks between a partition's failover fence and its respawn fence:
/// long enough for the re-spread ownership table to settle at survivors,
/// short against the recovery-convergence contract.
const RESPAWN_DELAY_TICKS: usize = 2;

impl MobiEyesSim {
    pub fn new(config: SimConfig) -> Self {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// Builds a deployment whose server, network and agents all record
    /// into the injected telemetry sink. The server tier follows the
    /// configuration: `partitions > 1` builds the cluster, and
    /// [`SimConfig::resolved_transport`] picks the bus backend it pumps
    /// (lock-step queue, loopback TCP, or a Unix-domain socket).
    pub fn with_telemetry(config: SimConfig, telemetry: Telemetry) -> Self {
        Self::build(config, telemetry, None)
    }

    /// Builds a deployment whose partitions live in other OS processes:
    /// one framed connection per partition, hello exchange already done.
    /// Everything agent-facing stays in this process; only the server
    /// tier's partition ops cross the wire.
    pub fn with_remote_cluster(
        config: SimConfig,
        telemetry: Telemetry,
        conns: Vec<FramedConn>,
    ) -> Self {
        Self::build(config, telemetry, Some(conns))
    }

    fn build(config: SimConfig, telemetry: Telemetry, remote: Option<Vec<FramedConn>>) -> Self {
        let workload = Workload::generate(&config);
        let engine = config.resolved_engine();
        let grid = Grid::new(workload.universe, config.alpha);
        let grid_copy = grid.clone();
        // Lease durations are configured in ticks; heartbeats fire twice
        // per lease so one lost beacon does not expire a healthy object.
        let lease_secs = config.lease_ticks as f64 * config.time_step;
        let heartbeat_secs = (config.lease_ticks / 2).max(1) as f64 * config.time_step;
        let pconf = Arc::new(
            ProtocolConfig::new(grid)
                .with_propagation(config.propagation)
                .with_grouping(config.grouping)
                .with_safe_period(config.safe_period)
                .with_delta(config.delta)
                .with_lease(lease_secs, heartbeat_secs),
        );
        let layout = BaseStationLayout::new(workload.universe, config.alen);
        let mut net = Net::new(layout.clone()).with_telemetry(telemetry.clone());
        let partitions = config.resolved_partitions();
        let store_root = config.resolved_store_dir();
        let mut single_store = None;
        let mut tier = match remote {
            // Remote partitions open, replay and journal their own logs
            // (see mobieyes-cluster::serve); the coordinator only passes
            // the root down so respawned children find their directory.
            Some(conns) => ServerTier::Cluster(Box::new(ClusterServer::new_remote_with_store(
                Arc::clone(&pconf),
                telemetry.clone(),
                conns,
                config.alen,
                store_root.clone(),
            ))),
            None if partitions > 1 => {
                let cluster = match config.resolved_transport() {
                    TransportKind::Lockstep => {
                        ClusterServer::new(Arc::clone(&pconf), partitions, telemetry.clone())
                    }
                    TransportKind::Tcp => ClusterServer::new_over_socket(
                        Arc::clone(&pconf),
                        partitions,
                        telemetry.clone(),
                        SocketTransport::<Envelope>::loopback_tcp()
                            .expect("loopback TCP bus for the cluster"),
                    ),
                    TransportKind::Uds => ClusterServer::new_over_socket(
                        Arc::clone(&pconf),
                        partitions,
                        telemetry.clone(),
                        SocketTransport::<Envelope>::loopback_uds(&unique_bus_path())
                            .expect("loopback Unix-domain bus for the cluster"),
                    ),
                };
                let cluster = match &store_root {
                    Some(root) => cluster.with_store(root.clone()),
                    None => cluster,
                };
                ServerTier::Cluster(Box::new(cluster))
            }
            None => {
                let mut server = Server::new(Arc::clone(&pconf)).with_telemetry(telemetry.clone());
                if let Some(root) = &store_root {
                    let dir = root.join("p0");
                    let st = Store::open(StoreConfig::new(&dir, 0), telemetry.clone())
                        .unwrap_or_else(|e| panic!("opening store {}: {e}", dir.display()));
                    let summary = store::replay_into(&dir, 0, &mut server, &mut net, &telemetry)
                        .unwrap_or_else(|e| panic!("replaying store {}: {e}", dir.display()));
                    if summary.records_applied > 0 {
                        // Replay re-emits historical downlinks; the agents
                        // of the previous incarnation already saw them.
                        net.take_downlinks();
                        server.take_outbox();
                    }
                    if st.next_seq() == 0 {
                        st.append_record(&LogRecord::Meta {
                            partition: 0,
                            num_partitions: 1,
                        });
                    }
                    // Attach after replay so replayed ops don't re-journal,
                    // and before the query installs below so they do.
                    server.set_journal(Some(Arc::new(st.clone())));
                    single_store = Some(st);
                }
                ServerTier::Single(Box::new(server))
            }
        };
        let mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );
        let n = workload.objects.len();
        let threads = config.resolved_threads().min(n.max(1)).max(1);
        let shard_chunk = n.max(1).div_ceil(threads);
        let shards = n.max(1).div_ceil(shard_chunk);
        let shard_sinks: Vec<Telemetry> = (0..shards).map(|_| Telemetry::new()).collect();
        let shard_nets: Vec<Net> = (0..shards).map(|_| Net::new(layout.clone())).collect();
        let agents: Vec<MovingObjectAgent> = workload
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                MovingObjectAgent::new(
                    ObjectId(i as u32),
                    Properties::new(),
                    o.max_speed,
                    o.initial_pos,
                    mobility.velocities[i],
                    Arc::clone(&pconf),
                )
                .with_telemetry(shard_sinks[i / shard_chunk].clone())
            })
            .collect();
        // Install the full query workload up front; the position-request
        // handshake resolves during the warm-up ticks.
        let qids: Vec<QueryId> = workload
            .queries
            .iter()
            .map(|q| {
                tier.install_query(
                    ObjectId(q.focal_idx as u32),
                    QueryRegion::circle(q.radius),
                    Filter::with_selectivity(workload.selectivity, q.filter_salt),
                    &mut net,
                )
            })
            .collect();
        let max_radius = workload
            .queries
            .iter()
            .map(|q| q.radius)
            .fold(1.0f64, f64::max);
        let truth = GroundTruth::new(&workload, max_radius.max(config.alpha)).with_threads(threads);
        let mut sim = MobiEyesSim {
            config,
            workload,
            mobility,
            tier,
            net,
            agents,
            truth,
            qids,
            tick_index: 0,
            inbox: Vec::new(),
            telemetry,
            layout,
            shard_chunk,
            shard_nets,
            shard_sinks,
            churn: ChurnPlan::none(),
            churn_base: 0,
            offline: vec![None; n],
            rejoin_now: vec![None; n],
            skip_now: vec![false; n],
            frozen: false,
            rebalance_ticks: 0,
            engine,
            grid: grid_copy,
            soa: AgentSoa::new(n, shards),
            crash_plan: PartitionCrashPlan::none(),
            recovery: RecoveryKind::Failover,
            pending_respawn: Vec::new(),
            crash_hook: None,
            respawn_hook: None,
            store: single_store,
            store_root,
            store_checkpoint_ticks: 0,
        };
        sim.store_checkpoint_ticks = sim.config.resolved_store_checkpoint_ticks();
        sim.rebalance_ticks = sim.config.resolved_rebalance_ticks();
        sim.recovery = sim.config.resolved_recovery();
        let crash_tick = sim.config.resolved_partition_crash_ticks();
        let crash_parts = sim.config.resolved_partitions() as u32;
        if crash_tick > 0 && crash_parts >= 2 {
            sim.crash_plan = PartitionCrashPlan::seeded(
                sim.config.seed,
                crash_parts,
                sim.config.resolved_partition_crash_kills(),
                // The plan fires relative to measured ticks; warm-up runs
                // crash-free so every deployment installs identically.
                (sim.config.warmup_ticks + crash_tick) as u64,
            );
        }
        // Fault knobs from the configuration apply for the whole run; the
        // chaos harness installs sharper-edged plans via `set_churn`.
        let c = &sim.config;
        if c.uplink_drop > 0.0 || c.downlink_drop > 0.0 || c.dup_rate > 0.0 || c.churn_rate > 0.0 {
            let fault_ticks = (c.warmup_ticks + c.ticks) as u64;
            let plan = ChurnPlan::new(
                c.uplink_drop,
                c.dup_rate,
                c.downlink_drop,
                c.dup_rate,
                c.churn_rate,
                fault_ticks,
                c.seed ^ 0xC4A0_5EED,
            );
            sim.set_churn(plan);
        }
        sim
    }

    /// The shared instrumentation sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The resolved tick engine this deployment runs.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.tick_index as f64 * self.config.time_step
    }

    /// The single server (panics on a cluster deployment — use
    /// [`cluster`](Self::cluster) or the tier-agnostic
    /// [`query_result`](Self::query_result) there).
    pub fn server(&self) -> &Server {
        match &self.tier {
            ServerTier::Single(s) => s,
            ServerTier::Cluster(_) => {
                panic!("server(): this deployment is partitioned; use cluster()")
            }
        }
    }

    /// The partitioned server tier (panics on a single-server deployment).
    pub fn cluster(&self) -> &ClusterServer {
        match &self.tier {
            ServerTier::Cluster(c) => c,
            ServerTier::Single(_) => {
                panic!("cluster(): this deployment is single-server; use server()")
            }
        }
    }

    /// The coordinator's private bus-sink snapshot (recovery + rebalance
    /// counters and events, kept out of the protocol snapshot), or `None`
    /// on a single-server deployment.
    pub fn bus_snapshot(&self) -> Option<mobieyes_telemetry::MetricsSnapshot> {
        match &self.tier {
            ServerTier::Cluster(c) => Some(c.bus_telemetry().snapshot()),
            ServerTier::Single(_) => None,
        }
    }

    /// Mutable access to the partitioned tier (fault-injection tests).
    pub fn cluster_mut(&mut self) -> &mut ClusterServer {
        match &mut self.tier {
            ServerTier::Cluster(c) => c,
            ServerTier::Single(_) => {
                panic!("cluster_mut(): this deployment is single-server")
            }
        }
    }

    /// Current result set of a query, whatever the in-process server tier
    /// (panics on a remote deployment — use
    /// [`query_result_owned`](Self::query_result_owned) there).
    pub fn query_result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.tier.query_result(qid)
    }

    /// Current result set of a query as an owned set; works on every
    /// deployment, including multi-process ones.
    pub fn query_result_owned(&self, qid: QueryId) -> Option<BTreeSet<ObjectId>> {
        self.tier.query_result_owned(qid)
    }

    /// FNV-1a digest over every query's current result set, folding query
    /// ids in workload order and members in ascending object-id order.
    /// Two deployments of the same configuration that agree on every
    /// result set produce the same digest — the comparison handle the
    /// socket smoke test and the transport equivalence matrix use.
    pub fn result_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let eat = |h: &mut u64, v: u64| {
            for b in v.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &qid in &self.qids {
            eat(&mut h, qid.0 as u64);
            match self.tier.query_result_owned(qid) {
                Some(set) => {
                    eat(&mut h, set.len() as u64 + 1);
                    for oid in set {
                        eat(&mut h, oid.0 as u64);
                    }
                }
                None => eat(&mut h, 0),
            }
        }
        h
    }

    /// Tells remote partition processes to exit their service loops after
    /// a final reply. No-op for in-process deployments.
    pub fn shutdown(&mut self) {
        if let ServerTier::Cluster(c) = &mut self.tier {
            if c.has_remote() {
                c.shutdown_remote();
            }
        }
    }

    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Whether this deployment journals to a durable store
    /// ([`SimConfig::store_dir`] / `MOBIEYES_STORE_DIR`).
    pub fn has_store(&self) -> bool {
        match &self.tier {
            ServerTier::Single(_) => self.store.is_some(),
            ServerTier::Cluster(c) => c.has_store(),
        }
    }

    /// Checkpoints every live partition's durable log now (snapshot +
    /// segment GC) and returns the per-partition next-sequence numbers.
    /// Empty when the deployment has no store.
    pub fn checkpoint_now(&mut self) -> Vec<u64> {
        match &mut self.tier {
            ServerTier::Single(s) => match &self.store {
                Some(st) => {
                    st.checkpoint(s.checkpoint_bytes());
                    vec![st.next_seq()]
                }
                None => Vec::new(),
            },
            ServerTier::Cluster(c) if c.has_store() => c.checkpoint_all(),
            ServerTier::Cluster(_) => Vec::new(),
        }
    }

    /// Historical trajectory of `oid` over simulated seconds
    /// `[t0, t1]`, read from the durable logs (merged across partitions
    /// on a cluster). Empty when the deployment has no store.
    pub fn trajectory(&self, oid: ObjectId, t0: f64, t1: f64) -> Vec<LinearMotion> {
        match &self.tier {
            ServerTier::Single(_) => match &self.store {
                Some(st) => st.trajectory(oid, t0, t1).unwrap_or_default(),
                None => Vec::new(),
            },
            ServerTier::Cluster(c) => c.trajectory(oid, t0, t1),
        }
    }

    /// Crash-recovery drill for the single-server tier: discards the
    /// in-memory server and rebuilds it purely from the durable log, as
    /// a restarted process would (panics without a store; on a cluster
    /// use [`ClusterServer::rebuild_partition_from_log`]). Replay runs
    /// against scratch sinks so the drill doesn't perturb run metrics.
    pub fn rebuild_server_from_log(&mut self) {
        let (root, st) = match (&self.store_root, &self.store) {
            (Some(root), Some(st)) => (root.clone(), st.clone()),
            _ => panic!("rebuild_server_from_log(): this deployment has no durable store"),
        };
        let pconf = match &self.tier {
            ServerTier::Single(s) => s.config_arc(),
            ServerTier::Cluster(_) => panic!(
                "rebuild_server_from_log(): partitioned deployment; use \
                 cluster_mut().rebuild_partition_from_log()"
            ),
        };
        st.flush();
        let dir = root.join("p0");
        let scratch_sink = Telemetry::new();
        let mut twin = Server::new(pconf).with_telemetry(scratch_sink.clone());
        let mut scratch_net = Net::new(self.layout.clone());
        store::replay_into(&dir, 0, &mut twin, &mut scratch_net, &scratch_sink)
            .unwrap_or_else(|e| panic!("replaying store {}: {e}", dir.display()));
        twin.take_outbox();
        twin.set_telemetry(self.telemetry.clone());
        twin.set_journal(Some(Arc::new(st)));
        self.tier = ServerTier::Single(Box::new(twin));
    }

    /// Installs a downlink fault plan (drops / duplicates) for
    /// failure-injection experiments.
    pub fn set_fault(&mut self, plan: mobieyes_net::FaultPlan) {
        self.net.set_fault(plan);
    }

    /// Installs a combined fault-and-churn plan: downlink and uplink
    /// drop/duplication plus the plan's deterministic object
    /// disconnect/reconnect/crash schedule. The schedule's windows are
    /// relative to the current tick.
    pub fn set_churn(&mut self, plan: ChurnPlan) {
        self.net.set_fault(plan.downlink_fault());
        self.net.set_uplink_fault(plan.uplink_fault());
        self.churn_base = self.tick_index;
        self.churn = plan;
    }

    /// Removes all fault injection (drops, duplicates and churn). Agents
    /// still offline rejoin on the next step, so the system enters a
    /// fault-free recovery phase immediately.
    pub fn clear_faults(&mut self) {
        self.net.set_fault(FaultPlan::none());
        self.net.set_uplink_fault(FaultPlan::none());
        self.churn = ChurnPlan::none();
    }

    /// Freezes (or unfreezes) mobility: objects stop moving but the
    /// protocol keeps running. Convergence measurements use this to hold
    /// the ground truth still while the protocol repairs itself.
    /// Freezing also zeroes the velocities agents report, so advertised
    /// dead-reckoning motion settles onto the frozen true positions and
    /// exact convergence is reachable.
    pub fn freeze(&mut self, frozen: bool) {
        self.frozen = frozen;
        if frozen {
            for v in &mut self.mobility.velocities {
                *v = Vec2::new(0.0, 0.0);
            }
        }
    }

    /// Installs a partition-crash schedule, overriding the knobs the
    /// configuration resolved (tests and the recovery bench).
    pub fn set_crash_plan(&mut self, plan: PartitionCrashPlan) {
        self.crash_plan = plan;
    }

    /// Overrides the crash-recovery mode.
    pub fn set_recovery(&mut self, r: RecoveryKind) {
        self.recovery = r;
    }

    /// Installs the out-of-process kill callback: invoked with the victim
    /// partition id at the crash tick instead of the in-process kill, so
    /// a multi-process driver can SIGKILL the real child.
    pub fn set_crash_hook(&mut self, hook: impl FnMut(u32) + 'static) {
        self.crash_hook = Some(Box::new(hook));
    }

    /// Installs the out-of-process respawn callback: invoked with the
    /// partition id once its respawn is due; returns the restarted
    /// child's hello-completed connection, or `None` to retry next tick.
    pub fn set_respawn_hook(&mut self, hook: impl FnMut(u32) -> Option<FramedConn> + 'static) {
        self.respawn_hook = Some(Box::new(hook));
    }

    /// Runs the per-tick crash schedule: kill due victims, detect and
    /// fence anything dead (however it died), and perform due respawns.
    fn crash_recovery_hook(&mut self) {
        if self.crash_plan.is_noop() && self.pending_respawn.is_empty() {
            return;
        }
        let victims: Vec<u32> = self.crash_plan.victims_at(self.tick_index as u64).to_vec();
        if !victims.is_empty() {
            let remote = self.tier.is_remote();
            for &p in &victims {
                if remote {
                    let hook = self
                        .crash_hook
                        .as_mut()
                        .expect("remote deployments need a crash hook to kill children");
                    hook(p);
                } else if let ServerTier::Cluster(c) = &mut self.tier {
                    c.kill_partition(p);
                }
                if self.recovery == RecoveryKind::Respawn {
                    self.pending_respawn
                        .push((p, self.tick_index + RESPAWN_DELAY_TICKS));
                }
            }
        }
        // Detection + failover fence. Runs every boundary while the plan
        // is armed: out-of-process deaths only become visible through the
        // probe/classified-error path, possibly ticks after the kill.
        if let ServerTier::Cluster(c) = &mut self.tier {
            c.recover_crashed(&mut self.net);
        }
        if self.pending_respawn.is_empty() {
            return;
        }
        let now_tick = self.tick_index;
        let due: Vec<u32> = self
            .pending_respawn
            .iter()
            .filter(|&&(_, at)| at <= now_tick)
            .map(|&(p, _)| p)
            .collect();
        for p in due {
            let done = if self.tier.is_remote() {
                let conn = self
                    .respawn_hook
                    .as_mut()
                    .expect("remote deployments need a respawn hook to restart children")(
                    p
                );
                match conn {
                    Some(conn) => match &mut self.tier {
                        ServerTier::Cluster(c) => c.respawn_remote(p, conn).is_ok(),
                        ServerTier::Single(_) => unreachable!("remote tier is a cluster"),
                    },
                    // Child not back yet; retry at the next boundary.
                    None => false,
                }
            } else if let ServerTier::Cluster(c) = &mut self.tier {
                c.respawn_partition(p);
                true
            } else {
                true
            };
            if done {
                self.pending_respawn.retain(|&(q, _)| q != p);
            }
        }
    }

    /// Whether agent `i` is currently disconnected by the churn plan.
    pub fn agent_offline(&self, i: usize) -> bool {
        self.offline[i].is_some()
    }

    /// Computes this step's offline/rejoin sets from the churn schedule.
    /// Transitions are driven by the plan's per-object windows; an object
    /// still offline when the plan is cleared rejoins on the next step
    /// with the crash flag captured at disconnect time.
    ///
    /// Returns whether the step is *quiet*: no churn plan, no offline
    /// agents, no rejoins — the precondition for the fast engine's
    /// every-agent-is-reachable assumption.
    fn apply_churn(&mut self) -> bool {
        let any_offline = self.offline.iter().any(|o| o.is_some());
        if !self.churn.has_churn() && !any_offline {
            // Clear rejoin flags left over from the final reconnect step.
            if self.rejoin_now.iter().any(|r| r.is_some()) {
                self.rejoin_now.iter_mut().for_each(|r| *r = None);
                self.skip_now.iter_mut().for_each(|s| *s = false);
            }
            return true;
        }
        let rel = (self.tick_index - self.churn_base) as u64;
        for i in 0..self.agents.len() {
            self.rejoin_now[i] = None;
            let oid = i as u32;
            let want_off = self.churn.is_offline(rel, oid);
            if want_off && self.offline[i].is_none() {
                self.offline[i] = Some(self.churn.crashes(oid));
                self.telemetry
                    .event(EventKind::ObjectOffline { oid: oid as u64 });
            } else if !want_off {
                if let Some(fresh) = self.offline[i].take() {
                    self.telemetry.event(EventKind::ObjectOnline {
                        oid: oid as u64,
                        fresh: fresh as u64,
                    });
                    self.rejoin_now[i] = Some(fresh);
                }
            }
            self.skip_now[i] = self.offline[i].is_some();
        }
        false
    }

    pub fn query_ids(&self) -> &[QueryId] {
        &self.qids
    }

    /// Advances the simulation one time step, accumulating measurements
    /// when `measured` is true.
    ///
    /// The step mirrors the paper's within-step update resolution:
    /// 1. mobility advances every object;
    /// 2. objects report motion events (cell changes, dead-reckoning
    ///    deviations) uplink;
    /// 3. the server mediates — broadcasts focal updates and query state;
    /// 4. objects receive the downlinks (including anything queued from
    ///    the previous step), install/update queries and evaluate,
    ///    reporting containment changes;
    /// 5. the server ingests the result updates.
    pub fn step(&mut self, measured: bool) {
        self.tick_index += 1;
        let t = self.now();
        self.telemetry.set_now(t);
        for sink in &self.shard_sinks {
            sink.set_now(t);
        }
        {
            let _span = self.telemetry.span(Phase::Mobility);
            if !self.frozen {
                self.mobility.step();
            }
        }

        // Reconcile the churn schedule: take objects offline, flag the
        // rejoins the motion phase must perform. Runs in ascending object
        // order on the coordinator, so events and the resulting Resync
        // uplinks are deterministic at any thread count.
        let quiet = self.apply_churn();

        // The fast engine requires a quiet step (no churn, nobody offline
        // or rejoining) and delivery without a stateful downlink fault
        // RNG; anything else runs the seed phases and invalidates the
        // mirror, which rebuilds lazily on the next fast step.
        let fast = quiet && self.engine == EngineKind::Soa && self.net.fault().is_noop();
        if !fast {
            self.soa.valid = false;
        }

        // Phase A: motion reports.
        {
            let _span = self.telemetry.span(Phase::Motion);
            if fast {
                self.run_motion_phase_fast(t);
            } else {
                self.run_motion_phase(t);
            }
            self.merge_shards();
        }

        // Periodic fault-tolerance duties (no-op unless leases are on):
        // lease expiry, pending-install retries, epoch digest beacon. Runs
        // before mediation so the beacon's digest describes the same state
        // the tick's other broadcasts start from.
        self.tier.heartbeat(t, &mut self.net);

        // Server mediation (profiled: the Figure 1/3 server-load metric).
        {
            let _span = self.telemetry.span(Phase::Mediation);
            self.tier.tick(&mut self.net);
        }

        // Phase B: downlink processing + local evaluation.
        {
            let _span = self.telemetry.span(Phase::Process);
            if fast {
                self.run_process_phase_fast(t);
            } else {
                self.run_process_phase(t);
            }
            self.merge_shards();
            self.net.end_tick();
        }

        // Server result ingestion.
        {
            let _span = self.telemetry.span(Phase::Ingest);
            self.tier.tick(&mut self.net);
        }

        // Load-aware partition rebalancing (cluster tier only). Runs at
        // the tick boundary, after ingest, so the observation window the
        // planner cuts holds whole ticks — and never changes query
        // results, only the load split (DESIGN.md §10).
        if self.rebalance_ticks > 0 && self.tick_index.is_multiple_of(self.rebalance_ticks) {
            if let ServerTier::Cluster(c) = &mut self.tier {
                c.rebalance();
            }
        }

        // Partition crash injection + recovery (cluster tier only). Kills
        // fire at the tick boundary so a victim never half-processes a
        // tick; detection, the failover fence and any due respawn run at
        // the same boundary (DESIGN.md §13).
        self.crash_recovery_hook();

        // Periodic durable-log checkpoint: snapshot + segment GC at the
        // tick boundary, bounding both replay work after a crash and
        // on-disk log size.
        if self.store_checkpoint_ticks > 0
            && self.tick_index.is_multiple_of(self.store_checkpoint_ticks)
        {
            self.checkpoint_now();
        }

        if measured {
            // Result accuracy vs exact ground truth. Remote tiers cannot
            // lend references across the process boundary, so they take
            // the owned fetch; in-process tiers keep the zero-copy path.
            let remote = self.tier.is_remote();
            let truth = self.truth.evaluate(&self.mobility.positions);
            for (q, t_set) in truth.iter().enumerate() {
                let err = if remote {
                    self.tier
                        .query_result_owned(self.qids[q])
                        .map(|reported| result_error(t_set, &reported))
                } else {
                    self.tier
                        .query_result(self.qids[q])
                        .map(|reported| result_error(t_set, reported))
                };
                if let Some(err) = err {
                    self.telemetry.gauge_add(sim_keys::TRUTH_ERROR_SUM, err);
                    self.telemetry.incr(sim_keys::TRUTH_ERROR_SAMPLES);
                }
            }
        }
    }

    /// Phase A over every shard: agents report motion events (cell
    /// crossings, dead-reckoning violations) into their shard's private
    /// uplink buffer and metric sink.
    fn run_motion_phase(&mut self, t: f64) {
        let chunk = self.shard_chunk;
        let positions = &self.mobility.positions;
        let velocities = &self.mobility.velocities;
        let rejoin = &self.rejoin_now;
        let skip = &self.skip_now;
        if self.shard_nets.len() <= 1 {
            let net = &mut self.shard_nets[0];
            for (i, agent) in self.agents.iter_mut().enumerate() {
                match rejoin[i] {
                    Some(fresh) => agent.reconnect(t, positions[i], velocities[i], fresh, net),
                    None if skip[i] => {}
                    None => agent.tick_motion(t, positions[i], velocities[i], net),
                }
            }
            return;
        }
        std::thread::scope(|s| {
            for (c, (agents, net)) in self
                .agents
                .chunks_mut(chunk)
                .zip(self.shard_nets.iter_mut())
                .enumerate()
            {
                let base = c * chunk;
                s.spawn(move || {
                    for (off, agent) in agents.iter_mut().enumerate() {
                        let i = base + off;
                        match rejoin[i] {
                            Some(fresh) => {
                                agent.reconnect(t, positions[i], velocities[i], fresh, net)
                            }
                            None if skip[i] => {}
                            None => agent.tick_motion(t, positions[i], velocities[i], net),
                        }
                    }
                });
            }
        });
    }

    /// Phase B over every shard: deliver the pending downlinks to each
    /// agent and run local evaluation; result reports buffer in the shard
    /// nets. The fault plan is a stateful RNG consumed per delivery, so
    /// fault-injection runs walk the agents sequentially; the fault-free
    /// path distributes physical delivery across the workers (read-only
    /// over the `Arc`-shared queues) and accounts received bytes after the
    /// scope ends.
    fn run_process_phase(&mut self, t: f64) {
        let chunk = self.shard_chunk;
        if self.shard_nets.len() <= 1 || !self.net.fault().is_noop() || self.churn.has_churn() {
            for i in 0..self.agents.len() {
                if self.skip_now[i] {
                    // Offline: the radio is off; pending downlinks stay
                    // queued in the network and lapse at `end_tick`
                    // (closed-loop delivery semantics, same as a drop).
                    continue;
                }
                self.inbox.clear();
                let pos = self.mobility.positions[i];
                self.net.deliver(NodeId(i as u32), pos, &mut self.inbox);
                let shard_net = &mut self.shard_nets[i / chunk];
                self.agents[i].tick_process(t, self.inbox.iter().map(|m| &**m), shard_net);
            }
            return;
        }
        let (unicasts, broadcasts) = self.net.take_downlinks();
        // Sorted (node, queue index) runs — persistent scratch shared with
        // the fast engine — so a worker touches only its own agents'
        // messages while preserving each node's queue order.
        build_node_runs(&mut self.soa.pairs, &unicasts);
        let positions = &self.mobility.positions;
        let layout = &self.layout;
        let (unicasts, broadcasts) = (&unicasts, &broadcasts);
        let pairs: &[(u32, u32)] = &self.soa.pairs;
        std::thread::scope(|s| {
            for (c, ((agents, net), scratch)) in self
                .agents
                .chunks_mut(chunk)
                .zip(self.shard_nets.iter_mut())
                .zip(self.soa.scratch.iter_mut())
                .enumerate()
            {
                let base = c * chunk;
                s.spawn(move || {
                    scratch.rx.clear();
                    let mut cur = pairs.partition_point(|&(n, _)| (n as usize) < base);
                    let hi = pairs.partition_point(|&(n, _)| (n as usize) < base + agents.len());
                    let mut inbox: Vec<&Downlink> = Vec::new();
                    for (off, agent) in agents.iter_mut().enumerate() {
                        let i = (base + off) as u32;
                        let pos = positions[base + off];
                        inbox.clear();
                        while cur < hi && pairs[cur].0 == i {
                            let (_, msg, bytes) = &unicasts[pairs[cur].1 as usize];
                            scratch.rx.push((i, *bytes));
                            inbox.push(&**msg);
                            cur += 1;
                        }
                        for (station, msg, bytes) in broadcasts.iter() {
                            if layout.covers(*station, pos) {
                                scratch.rx.push((i, *bytes));
                                inbox.push(&**msg);
                            }
                        }
                        agent.tick_process(t, inbox.iter().copied(), net);
                    }
                });
            }
        });
        for scratch in &self.soa.scratch {
            for &(node, bytes) in &scratch.rx {
                self.net.record_node_received(node as usize, bytes);
            }
        }
    }

    /// Rebuilds the struct-of-arrays mirror from agent heap state after a
    /// sequence of seed-path steps (or at the first fast step of a run).
    /// Cells come from each agent's *registered* cell — not its mobility
    /// position, which has already advanced past the agent's last sync.
    fn rebuild_soa(&mut self) {
        let Self {
            agents, soa, grid, ..
        } = self;
        for (i, agent) in agents.iter().enumerate() {
            soa.cells[i] = grid.flat_index(agent.current_cell()) as u32;
            soa.synced_at[i] = soa::NEVER;
            soa.refresh_row(i, agent);
        }
        soa.valid = true;
    }

    /// Phase A, fast engine: scans the flat cell mirror and runs
    /// `tick_motion` only for agents that changed grid cell or are focal
    /// (dead reckoning can fire without a crossing). Everyone else keeps a
    /// stale `pos`/`vel` inside the agent struct, which is sound because
    /// the processing phase re-syncs through `tick_motion` before any
    /// agent does real work — and a same-cell, non-focal `tick_motion` is
    /// a silent store (no messages, no telemetry, no state beyond
    /// pos/vel).
    fn run_motion_phase_fast(&mut self, t: f64) {
        if !self.soa.valid {
            self.rebuild_soa();
        }
        if self.agents.is_empty() {
            return;
        }
        let tick = self.tick_index as u32;
        let chunk = self.shard_chunk;
        let Self {
            agents,
            shard_nets,
            soa,
            mobility,
            grid,
            ..
        } = self;
        let positions = &mobility.positions;
        let velocities = &mobility.velocities;
        let views = soa::shard_views(
            &mut soa.cells,
            &mut soa.flags,
            &mut soa.lqt_len,
            &mut soa.safe_until,
            &mut soa.synced_at,
            chunk,
        );
        if shard_nets.len() <= 1 {
            let view = views.into_iter().next().expect("one shard view");
            motion_shard(
                agents,
                &mut shard_nets[0],
                view,
                0,
                positions,
                velocities,
                grid,
                t,
                tick,
            );
            return;
        }
        std::thread::scope(|s| {
            for (c, ((agents, net), view)) in agents
                .chunks_mut(chunk)
                .zip(shard_nets.iter_mut())
                .zip(views)
                .enumerate()
            {
                let base = c * chunk;
                let grid = &*grid;
                s.spawn(move || {
                    motion_shard(
                        agents, net, view, base, positions, velocities, grid, t, tick,
                    )
                });
            }
        });
    }

    /// Phase B, fast engine: indexed downlink delivery plus the cold and
    /// safe-period skips, with the skipped agents' telemetry footprint
    /// restored in batch (see [`crate::soa`] for the contract).
    fn run_process_phase_fast(&mut self, t: f64) {
        debug_assert!(self.soa.valid, "motion phase rebuilds the mirror first");
        if self.agents.is_empty() {
            self.net.end_tick();
            return;
        }
        let tick = self.tick_index as u32;
        let chunk = self.shard_chunk;
        let safe_period = self.config.safe_period;
        let (unicasts, broadcasts) = self.net.take_downlinks();
        let Self {
            agents,
            shard_nets,
            shard_sinks,
            soa,
            mobility,
            layout,
            grid,
            ..
        } = self;
        build_node_runs(&mut soa.pairs, &unicasts);
        soa.bucket_broadcasts(
            layout.num_stations(),
            broadcasts.iter().map(|(station, _, _)| station.0),
        );
        soa.classify_broadcasts(broadcasts.iter().map(|(_, msg, _)| &**msg));
        let positions = &mobility.positions;
        let velocities = &mobility.velocities;
        let views = soa::shard_views(
            &mut soa.cells,
            &mut soa.flags,
            &mut soa.lqt_len,
            &mut soa.safe_until,
            &mut soa.synced_at,
            chunk,
        );
        let pairs: &[(u32, u32)] = &soa.pairs;
        let bcasts = BcastIndex {
            pairs: &soa.bcast_pairs,
            offsets: &soa.bcast_offsets,
            class: &soa.bcast_class,
        };
        let (unicasts, broadcasts) = (&unicasts, &broadcasts);
        if shard_nets.len() <= 1 {
            let view = views.into_iter().next().expect("one shard view");
            process_shard(
                agents,
                &mut shard_nets[0],
                &shard_sinks[0],
                view,
                &mut soa.scratch[0],
                0,
                pairs,
                unicasts,
                broadcasts,
                bcasts,
                positions,
                velocities,
                layout,
                grid,
                safe_period,
                t,
                tick,
            );
        } else {
            std::thread::scope(|s| {
                for (c, ((((agents, net), sink), view), scratch)) in agents
                    .chunks_mut(chunk)
                    .zip(shard_nets.iter_mut())
                    .zip(shard_sinks.iter())
                    .zip(views)
                    .zip(soa.scratch.iter_mut())
                    .enumerate()
                {
                    let base = c * chunk;
                    let layout = &*layout;
                    let grid = &*grid;
                    s.spawn(move || {
                        process_shard(
                            agents,
                            net,
                            sink,
                            view,
                            scratch,
                            base,
                            pairs,
                            unicasts,
                            broadcasts,
                            bcasts,
                            positions,
                            velocities,
                            layout,
                            grid,
                            safe_period,
                            t,
                            tick,
                        )
                    });
                }
            });
        }
        for scratch in &self.soa.scratch {
            for &(node, bytes) in &scratch.rx {
                self.net.record_node_received(node as usize, bytes);
            }
        }
    }

    /// Forwards every shard's buffered uplinks into the real network and
    /// folds the shard metric accumulators into the shared sink, walking
    /// shards in ascending order — exactly the uplink queue order and
    /// event order the sequential engine produces.
    fn merge_shards(&mut self) {
        for s in 0..self.shard_nets.len() {
            for (node, up) in self.shard_nets[s].drain_uplinks() {
                self.net.send_uplink(node, up);
            }
            self.telemetry.merge_registry(&self.shard_sinks[s].drain());
        }
    }

    /// Runs warm-up plus measured ticks and returns the aggregated metrics.
    pub fn run(&mut self) -> RunMetrics {
        for _ in 0..self.config.warmup_ticks {
            self.step(false);
        }
        // Reset the registry after warm-up so installation traffic and
        // transient state do not pollute the measurements.
        self.telemetry.reset();
        self.net.reset_node_traffic();

        for _ in 0..self.config.ticks {
            self.step(true);
        }
        self.collect_metrics()
    }

    fn collect_metrics(&self) -> RunMetrics {
        let n = self.agents.len().max(1);
        let ticks = self.config.ticks.max(1);
        let duration = self.config.measured_seconds();
        let label = match (
            self.config.propagation,
            self.config.grouping,
            self.config.safe_period,
        ) {
            (Propagation::Eager, false, false) => "mobieyes-eqp".to_string(),
            (Propagation::Lazy, false, false) => "mobieyes-lqp".to_string(),
            (p, g, s) => format!(
                "mobieyes-{}{}{}",
                if p == Propagation::Lazy { "lqp" } else { "eqp" },
                if g { "+group" } else { "" },
                if s { "+safe" } else { "" }
            ),
        };
        let snapshot = self.telemetry.snapshot();
        let mut m = RunMetrics::from_snapshot(label, ticks, duration, n, &snapshot);
        let meter = self.net.meter();
        let (sent, recv) = meter.mean_node_traffic(n);
        m.set_power(&RadioModel::default(), sent, recv);
        m
    }

    /// Direct access to one agent (tests).
    pub fn agent(&self, i: usize) -> &MovingObjectAgent {
        &self.agents[i]
    }

    /// Exact ground-truth results for the current positions (tests).
    pub fn ground_truth(&mut self) -> Vec<std::collections::BTreeSet<ObjectId>> {
        self.truth.evaluate(&self.mobility.positions).to_vec()
    }
}

/// Rebuilds the per-tick `(node, unicast queue index)` runs into a
/// persistent buffer: cleared, filled, sorted — never reallocated in
/// steady state. Sorting preserves each node's queue order because the
/// queue index is strictly increasing within a node.
fn build_node_runs(pairs: &mut Vec<(u32, u32)>, unicasts: &[(NodeId, Arc<Downlink>, usize)]) {
    pairs.clear();
    pairs.reserve(unicasts.len());
    for (k, (to, _, _)) in unicasts.iter().enumerate() {
        pairs.push((to.0, k as u32));
    }
    pairs.sort_unstable();
}

/// Fast-engine motion phase over one shard (see
/// [`MobiEyesSim::run_motion_phase_fast`] for the skip argument).
#[allow(clippy::too_many_arguments)]
fn motion_shard(
    agents: &mut [MovingObjectAgent],
    net: &mut Net,
    mut view: SoaShard<'_>,
    base: usize,
    positions: &[Point],
    velocities: &[Vec2],
    grid: &Grid,
    t: f64,
    tick: u32,
) {
    for (off, agent) in agents.iter_mut().enumerate() {
        let i = base + off;
        let fc = grid.flat_cell_of(positions[i]) as u32;
        if fc == view.cells[off] && view.flags[off] & FLAG_FOCAL == 0 {
            continue;
        }
        agent.tick_motion(t, positions[i], velocities[i], net);
        view.cells[off] = fc;
        view.synced_at[off] = tick;
        view.refresh(off, agent);
    }
}

/// The tick's station-bucketed broadcast index (built by
/// [`AgentSoa::bucket_broadcasts`]), shared read-only across shards.
#[derive(Clone, Copy)]
struct BcastIndex<'a> {
    /// Sorted `(station, broadcast queue index)` pairs.
    pairs: &'a [(u32, u32)],
    /// `station -> first pair index`, length `num_stations + 1`.
    offsets: &'a [u32],
    /// Per-broadcast inert-delivery classification, by queue position.
    class: &'a [BcastClass],
}

impl BcastIndex<'_> {
    /// Pushes `nu + k` for every broadcast covering `pos` onto `ib`,
    /// in broadcast-queue order — the same entries the linear
    /// every-broadcast scan would select, without touching stations that
    /// cannot reach the agent. Only the 3×3 lattice neighborhood of the
    /// agent's home square can cover it: the coverage radius is
    /// `alen·√2/2 ≈ 0.707·alen`, while a station two squares away is at
    /// least `1.5·alen` from any point of the home square.
    fn deliver_into(&self, layout: &BaseStationLayout, pos: Point, nu: u32, ib: &mut Vec<u32>) {
        let start = ib.len();
        let home = layout.station_at(pos).0 as i64;
        let cols = layout.cols() as i64;
        let rows = layout.rows() as i64;
        let (hx, hy) = (home % cols, home / cols);
        for y in (hy - 1).max(0)..=(hy + 1).min(rows - 1) {
            for x in (hx - 1).max(0)..=(hx + 1).min(cols - 1) {
                let s = (y * cols + x) as u32;
                let lo = self.offsets[s as usize] as usize;
                let hi = self.offsets[s as usize + 1] as usize;
                if lo == hi || !layout.covers(StationId(s), pos) {
                    continue;
                }
                for &(_, k) in &self.pairs[lo..hi] {
                    ib.push(nu + k);
                }
            }
        }
        // Runs were appended station by station; one sort of the tail
        // restores the global broadcast-queue order behind the unicasts.
        ib[start..].sort_unstable();
    }
}

/// Fast-engine processing phase over one shard: indexed downlink
/// delivery, the cold and safe-period whole-agent skips, batched
/// restoration of the skipped agents' telemetry footprint, and the
/// stale-position re-sync for agents the motion phase skipped.
#[allow(clippy::too_many_arguments)]
fn process_shard(
    agents: &mut [MovingObjectAgent],
    net: &mut Net,
    sink: &Telemetry,
    mut view: SoaShard<'_>,
    scratch: &mut ShardScratch,
    base: usize,
    pairs: &[(u32, u32)],
    unicasts: &[(NodeId, Arc<Downlink>, usize)],
    broadcasts: &[(StationId, Arc<Downlink>, usize)],
    bcasts: BcastIndex<'_>,
    positions: &[Point],
    velocities: &[Vec2],
    layout: &BaseStationLayout,
    grid: &Grid,
    safe_period: bool,
    t: f64,
    tick: u32,
) {
    scratch.rx.clear();
    // This shard's slice of the sorted per-node runs.
    let mut cur = pairs.partition_point(|&(n, _)| (n as usize) < base);
    let hi = pairs.partition_point(|&(n, _)| (n as usize) < base + agents.len());
    let nu = unicasts.len() as u32;
    let mut cold: u64 = 0;
    let mut safe_skips: u64 = 0;
    for (off, agent) in agents.iter_mut().enumerate() {
        let i = (base + off) as u32;
        let pos = positions[base + off];
        scratch.ib.clear();
        while cur < hi && pairs[cur].0 == i {
            scratch.ib.push(pairs[cur].1);
            cur += 1;
        }
        if !broadcasts.is_empty() {
            bcasts.deliver_into(layout, pos, nu, &mut scratch.ib);
        }
        let f = view.flags[off];
        if scratch.ib.is_empty() {
            if f & (FLAG_LQT | FLAG_PENDING) == 0 {
                // Cold: `tick_process` would only record the eval timer
                // (excluded from protocol equality) and a zero LQT-size
                // sample, restored in one batch below.
                cold += 1;
                continue;
            }
            if safe_period && f & FLAG_PENDING == 0 && t < view.safe_until[off] {
                // Every LQT entry is inside its safe period: the seed
                // evaluation bumps the skip counter per entry, samples
                // the LQT size, and changes nothing else.
                safe_skips += view.lqt_len[off] as u64;
                sink.observe(agent_keys::LQT_SIZE, view.lqt_len[off] as f64);
                continue;
            }
        } else if f & (FLAG_LQT | FLAG_PENDING | FLAG_SHADOW) == 0 && scratch.ib[0] >= nu {
            // Inert-delivery skip: every inbox entry is a broadcast
            // (unicasts sort first, so `ib[0] >= nu` means none), and the
            // agent holds no query state a broadcast could touch. If each
            // message is provably a no-op for such an agent
            // ([`BcastClass`]), meter the reception and drop it without
            // running `tick_process` — the seed run would only restore
            // the zero LQT-size sample batched below.
            let cell = grid.cell_of(pos);
            let inert = scratch
                .ib
                .iter()
                .all(|&k| match bcasts.class[(k - nu) as usize] {
                    BcastClass::Inert => true,
                    BcastClass::Outside(region) => !region.contains(cell),
                    BcastClass::Hot => false,
                });
            if inert {
                for &k in &scratch.ib {
                    scratch.rx.push((i, broadcasts[(k - nu) as usize].2));
                }
                cold += 1;
                continue;
            }
        }
        if view.synced_at[off] != tick {
            // The motion phase skipped this agent, so its internal
            // pos/vel are stale; a same-cell non-focal sync is silent.
            agent.tick_motion(t, pos, velocities[base + off], net);
            view.synced_at[off] = tick;
        }
        for &k in &scratch.ib {
            let bytes = if k < nu {
                unicasts[k as usize].2
            } else {
                broadcasts[(k - nu) as usize].2
            };
            scratch.rx.push((i, bytes));
        }
        agent.tick_process(
            t,
            scratch.ib.iter().map(|&k| {
                if k < nu {
                    &*unicasts[k as usize].1
                } else {
                    &*broadcasts[(k - nu) as usize].1
                }
            }),
            net,
        );
        view.refresh(off, agent);
    }
    if cold > 0 {
        sink.observe_n(agent_keys::LQT_SIZE, 0.0, cold);
    }
    if safe_skips > 0 {
        sink.add(agent_keys::SKIPPED_SAFE_PERIOD, safe_skips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_metrics() {
        let mut sim = MobiEyesSim::new(SimConfig::small_test(31));
        let m = sim.run();
        assert_eq!(m.ticks, 15);
        assert!(m.msgs_per_second > 0.0, "protocol must exchange messages");
        assert!(m.uplink_msgs_per_second > 0.0);
        assert!(m.downlink_msgs_per_second > 0.0);
        assert!(m.avg_lqt_size >= 0.0);
        assert!(m.avg_power_mw > 0.0);
        // Eager propagation keeps results close to the truth.
        assert!(
            m.avg_result_error < 0.2,
            "EQP error too high: {}",
            m.avg_result_error
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = MobiEyesSim::new(SimConfig::small_test(32)).run();
        let b = MobiEyesSim::new(SimConfig::small_test(32)).run();
        assert_eq!(a.msgs_per_second, b.msgs_per_second);
        assert_eq!(a.avg_lqt_size, b.avg_lqt_size);
        assert_eq!(a.avg_result_error, b.avg_result_error);
    }

    #[test]
    fn queries_actually_get_results() {
        let mut sim = MobiEyesSim::new(SimConfig::small_test(33));
        sim.run();
        let total: usize = sim
            .query_ids()
            .iter()
            .filter_map(|&q| sim.server().query_result(q))
            .map(|r| r.len())
            .sum();
        assert!(total > 0, "no query produced any result");
    }

    #[test]
    fn lazy_propagation_reduces_uplink_traffic() {
        let eager = MobiEyesSim::new(SimConfig::small_test(34)).run();
        let lazy =
            MobiEyesSim::new(SimConfig::small_test(34).with_propagation(Propagation::Lazy)).run();
        assert!(
            lazy.uplink_msgs_per_second < eager.uplink_msgs_per_second,
            "LQP uplink {} must be below EQP {}",
            lazy.uplink_msgs_per_second,
            eager.uplink_msgs_per_second
        );
    }
}
