//! The MobiEyes simulation driver: server + agents + network over a shared
//! mobility trace, with all the measurements of §5.

use crate::config::SimConfig;
use crate::metrics::{sim_keys, RunMetrics};
use crate::mobility::Mobility;
use crate::truth::{result_error, GroundTruth};
use crate::workload::Workload;
use mobieyes_core::server::Net;
use mobieyes_core::{
    Downlink, Filter, MovingObjectAgent, ObjectId, Propagation, Properties, ProtocolConfig,
    QueryId, Server,
};
use mobieyes_geo::{Grid, QueryRegion};
use mobieyes_net::{BaseStationLayout, RadioModel};
use mobieyes_telemetry::{Phase, Telemetry};
use std::sync::Arc;

/// A complete MobiEyes deployment under simulation.
pub struct MobiEyesSim {
    pub config: SimConfig,
    pub workload: Workload,
    mobility: Mobility,
    server: Server,
    net: Net,
    agents: Vec<MovingObjectAgent>,
    truth: GroundTruth,
    /// Query ids aligned with `workload.queries`.
    qids: Vec<QueryId>,
    tick_index: usize,
    inbox: Vec<Downlink>,
    /// Shared instrumentation sink every component records into.
    telemetry: Telemetry,
}

impl MobiEyesSim {
    pub fn new(config: SimConfig) -> Self {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// Builds a deployment whose server, network and agents all record
    /// into the injected telemetry sink.
    pub fn with_telemetry(config: SimConfig, telemetry: Telemetry) -> Self {
        let workload = Workload::generate(&config);
        let grid = Grid::new(workload.universe, config.alpha);
        let pconf = Arc::new(
            ProtocolConfig::new(grid)
                .with_propagation(config.propagation)
                .with_grouping(config.grouping)
                .with_safe_period(config.safe_period)
                .with_delta(config.delta),
        );
        let mut net = Net::new(BaseStationLayout::new(workload.universe, config.alen))
            .with_telemetry(telemetry.clone());
        let mut server = Server::new(Arc::clone(&pconf)).with_telemetry(telemetry.clone());
        let mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );
        let agents: Vec<MovingObjectAgent> = workload
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                MovingObjectAgent::new(
                    ObjectId(i as u32),
                    Properties::new(),
                    o.max_speed,
                    o.initial_pos,
                    mobility.velocities[i],
                    Arc::clone(&pconf),
                )
                .with_telemetry(telemetry.clone())
            })
            .collect();
        // Install the full query workload up front; the position-request
        // handshake resolves during the warm-up ticks.
        let qids: Vec<QueryId> = workload
            .queries
            .iter()
            .map(|q| {
                server.install_query(
                    ObjectId(q.focal_idx as u32),
                    QueryRegion::circle(q.radius),
                    Filter::with_selectivity(workload.selectivity, q.filter_salt),
                    &mut net,
                )
            })
            .collect();
        let max_radius = workload
            .queries
            .iter()
            .map(|q| q.radius)
            .fold(1.0f64, f64::max);
        let truth = GroundTruth::new(&workload, max_radius.max(config.alpha));
        MobiEyesSim {
            config,
            workload,
            mobility,
            server,
            net,
            agents,
            truth,
            qids,
            tick_index: 0,
            inbox: Vec::new(),
            telemetry,
        }
    }

    /// The shared instrumentation sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.tick_index as f64 * self.config.time_step
    }

    pub fn server(&self) -> &Server {
        &self.server
    }

    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Installs a downlink fault plan (drops / duplicates) for
    /// failure-injection experiments.
    pub fn set_fault(&mut self, plan: mobieyes_net::FaultPlan) {
        self.net.set_fault(plan);
    }

    pub fn query_ids(&self) -> &[QueryId] {
        &self.qids
    }

    /// Advances the simulation one time step, accumulating measurements
    /// when `measured` is true.
    ///
    /// The step mirrors the paper's within-step update resolution:
    /// 1. mobility advances every object;
    /// 2. objects report motion events (cell changes, dead-reckoning
    ///    deviations) uplink;
    /// 3. the server mediates — broadcasts focal updates and query state;
    /// 4. objects receive the downlinks (including anything queued from
    ///    the previous step), install/update queries and evaluate,
    ///    reporting containment changes;
    /// 5. the server ingests the result updates.
    pub fn step(&mut self, measured: bool) {
        self.tick_index += 1;
        let t = self.now();
        self.telemetry.set_now(t);
        {
            let _span = self.telemetry.span(Phase::Mobility);
            self.mobility.step();
        }

        // Phase A: motion reports.
        {
            let _span = self.telemetry.span(Phase::Motion);
            for i in 0..self.agents.len() {
                self.agents[i].tick_motion(
                    t,
                    self.mobility.positions[i],
                    self.mobility.velocities[i],
                    &mut self.net,
                );
            }
        }

        // Server mediation (profiled: the Figure 1/3 server-load metric).
        {
            let _span = self.telemetry.span(Phase::Mediation);
            self.server.tick(&mut self.net);
        }

        // Phase B: downlink processing + local evaluation.
        {
            let _span = self.telemetry.span(Phase::Process);
            for i in 0..self.agents.len() {
                self.inbox.clear();
                let pos = self.mobility.positions[i];
                self.net
                    .deliver(mobieyes_net::NodeId(i as u32), pos, &mut self.inbox);
                self.agents[i].tick_process(t, &self.inbox, &mut self.net);
            }
            self.net.end_tick();
        }

        // Server result ingestion.
        {
            let _span = self.telemetry.span(Phase::Ingest);
            self.server.tick(&mut self.net);
        }

        if measured {
            // Result accuracy vs exact ground truth.
            let truth = self.truth.evaluate(&self.mobility.positions);
            for (q, t_set) in truth.iter().enumerate() {
                if let Some(reported) = self.server.query_result(self.qids[q]) {
                    self.telemetry
                        .gauge_add(sim_keys::TRUTH_ERROR_SUM, result_error(t_set, reported));
                    self.telemetry.incr(sim_keys::TRUTH_ERROR_SAMPLES);
                }
            }
        }
    }

    /// Runs warm-up plus measured ticks and returns the aggregated metrics.
    pub fn run(&mut self) -> RunMetrics {
        for _ in 0..self.config.warmup_ticks {
            self.step(false);
        }
        // Reset the registry after warm-up so installation traffic and
        // transient state do not pollute the measurements.
        self.telemetry.reset();
        self.net.reset_node_traffic();

        for _ in 0..self.config.ticks {
            self.step(true);
        }
        self.collect_metrics()
    }

    fn collect_metrics(&self) -> RunMetrics {
        let n = self.agents.len().max(1);
        let ticks = self.config.ticks.max(1);
        let duration = self.config.measured_seconds();
        let label = match (
            self.config.propagation,
            self.config.grouping,
            self.config.safe_period,
        ) {
            (Propagation::Eager, false, false) => "mobieyes-eqp".to_string(),
            (Propagation::Lazy, false, false) => "mobieyes-lqp".to_string(),
            (p, g, s) => format!(
                "mobieyes-{}{}{}",
                if p == Propagation::Lazy { "lqp" } else { "eqp" },
                if g { "+group" } else { "" },
                if s { "+safe" } else { "" }
            ),
        };
        let snapshot = self.telemetry.snapshot();
        let mut m = RunMetrics::from_snapshot(label, ticks, duration, n, &snapshot);
        let meter = self.net.meter();
        let (sent, recv) = meter.mean_node_traffic(n);
        m.set_power(&RadioModel::default(), sent, recv);
        m
    }

    /// Direct access to one agent (tests).
    pub fn agent(&self, i: usize) -> &MovingObjectAgent {
        &self.agents[i]
    }

    /// Exact ground-truth results for the current positions (tests).
    pub fn ground_truth(&mut self) -> Vec<std::collections::BTreeSet<ObjectId>> {
        self.truth.evaluate(&self.mobility.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_metrics() {
        let mut sim = MobiEyesSim::new(SimConfig::small_test(31));
        let m = sim.run();
        assert_eq!(m.ticks, 15);
        assert!(m.msgs_per_second > 0.0, "protocol must exchange messages");
        assert!(m.uplink_msgs_per_second > 0.0);
        assert!(m.downlink_msgs_per_second > 0.0);
        assert!(m.avg_lqt_size >= 0.0);
        assert!(m.avg_power_mw > 0.0);
        // Eager propagation keeps results close to the truth.
        assert!(
            m.avg_result_error < 0.2,
            "EQP error too high: {}",
            m.avg_result_error
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = MobiEyesSim::new(SimConfig::small_test(32)).run();
        let b = MobiEyesSim::new(SimConfig::small_test(32)).run();
        assert_eq!(a.msgs_per_second, b.msgs_per_second);
        assert_eq!(a.avg_lqt_size, b.avg_lqt_size);
        assert_eq!(a.avg_result_error, b.avg_result_error);
    }

    #[test]
    fn queries_actually_get_results() {
        let mut sim = MobiEyesSim::new(SimConfig::small_test(33));
        sim.run();
        let total: usize = sim
            .query_ids()
            .iter()
            .filter_map(|&q| sim.server().query_result(q))
            .map(|r| r.len())
            .sum();
        assert!(total > 0, "no query produced any result");
    }

    #[test]
    fn lazy_propagation_reduces_uplink_traffic() {
        let eager = MobiEyesSim::new(SimConfig::small_test(34)).run();
        let lazy =
            MobiEyesSim::new(SimConfig::small_test(34).with_propagation(Propagation::Lazy)).run();
        assert!(
            lazy.uplink_msgs_per_second < eager.uplink_msgs_per_second,
            "LQP uplink {} must be below EQP {}",
            lazy.uplink_msgs_per_second,
            eager.uplink_msgs_per_second
        );
    }
}
