//! Analytical messaging-cost model over the grid cell size α.
//!
//! The paper states that "the optimal value of the α parameter can be
//! derived analytically using a simple model" but omits the model for
//! space. This module reconstructs such a model from the protocol's
//! mechanics and the workload's first moments; the `alpha_model` bench
//! binary compares its curve against the measured Figure 4 sweep.
//!
//! Cost components per second, for `n_o` objects, `n_q` queries, mean
//! object speed `v̄` (miles/s) and mean query radius `r̄`:
//!
//! 1. **Cell-change uplinks.** A random-heading object with speed `v`
//!    crosses vertical grid lines at rate `|v·cosθ|/α` and horizontal ones
//!    at `|v·sinθ|/α`; averaging over headings gives `(4/π)·v/α` crossings
//!    per second. Under eager propagation every object reports crossings;
//!    under lazy propagation only focal objects do.
//! 2. **Velocity-change uplinks.** `nmo` objects re-randomize velocity per
//!    time step; the fraction that are focal (`n_f/n_o`) report (dead
//!    reckoning fires on the next step for any real change).
//! 3. **Focal-event broadcasts.** Every focal velocity change or cell
//!    change re-broadcasts query state to the monitoring region. The
//!    monitoring region of a query with radius `r` spans roughly
//!    `(α·⌈(α+2r)/α⌉)` miles per side; covering it takes
//!    `⌈side/alen⌉²`-ish base stations.
//! 4. **New-query unicasts (eager only).** A crossing object receives a
//!    unicast when its new cell intersects monitoring regions its old cell
//!    did not; approximated by the per-cell query density capped at 1.
//! 5. **Result-change uplinks.** Objects enter/leave query circles at a
//!    rate independent of α (≈ perimeter crossing of the query circles);
//!    included as a constant so the curve's absolute level is comparable.

use crate::config::SimConfig;

/// The model's prediction for one α value, broken into components
/// (messages per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaCost {
    pub alpha: f64,
    pub cell_change_uplinks: f64,
    pub velocity_uplinks: f64,
    pub broadcasts: f64,
    pub new_query_unicasts: f64,
    pub result_uplinks: f64,
}

impl AlphaCost {
    pub fn total(&self) -> f64 {
        self.cell_change_uplinks
            + self.velocity_uplinks
            + self.broadcasts
            + self.new_query_unicasts
            + self.result_uplinks
    }
}

/// First moments of the workload the model needs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMoments {
    /// Mean object speed, miles per second.
    pub mean_speed: f64,
    /// Mean query radius, miles.
    pub mean_radius: f64,
    /// Number of distinct focal objects.
    pub num_focals: f64,
}

impl WorkloadMoments {
    /// Moments from a configuration: zipf-weighted class means, uniform
    /// speed in [0, max] (hence the factor 1/2), and the expected number of
    /// distinct focal objects when `n_q` queries pick uniformly among
    /// `n_o` objects.
    pub fn from_config(config: &SimConfig) -> Self {
        let zipf_mean = |values: &[f64]| {
            let weights: Vec<f64> = (1..=values.len())
                .map(|k| 1.0 / (k as f64).powf(config.zipf_param))
                .collect();
            let total: f64 = weights.iter().sum();
            values
                .iter()
                .zip(&weights)
                .map(|(v, w)| v * w / total)
                .sum::<f64>()
        };
        let mean_max_speed_mph = zipf_mean(&config.speed_classes_mph);
        let mean_radius = zipf_mean(&config.radius_means) * config.radius_factor;
        let n_o = config.num_objects as f64;
        let n_q = config.num_queries as f64;
        let pool = config.focal_pool.unwrap_or(config.num_objects) as f64;
        // E[distinct] for n_q uniform draws from `pool` objects.
        let num_focals = (pool * (1.0 - (1.0 - 1.0 / pool).powf(n_q))).min(n_o);
        WorkloadMoments {
            mean_speed: mean_max_speed_mph / 3600.0 * 0.5,
            mean_radius,
            num_focals,
        }
    }
}

/// Predicts the messaging cost of one α value.
pub fn predict(config: &SimConfig, moments: &WorkloadMoments, alpha: f64) -> AlphaCost {
    assert!(alpha > 0.0);
    let n_o = config.num_objects as f64;
    let n_q = config.num_queries as f64;
    let n_f = moments.num_focals;
    let ts = config.time_step;
    let side = config.side();
    let v = moments.mean_speed;
    let r = moments.mean_radius;
    let eager = config.propagation == mobieyes_core::Propagation::Eager;

    // (1) Cell crossings per object per second: (4/π)·v/α.
    let crossing_rate = 4.0 / std::f64::consts::PI * v / alpha;
    let crossers = if eager { n_o } else { n_f };
    let cell_change_uplinks = crossers * crossing_rate;

    // (2) Focal velocity-change reports.
    let velocity_uplinks = config.objects_changing_velocity as f64 / ts * (n_f / n_o);

    // (3) Broadcasts per focal event. Monitoring region side in miles:
    // the focal cell plus the radius rounded up to whole cells each way.
    let mon_side = alpha * (1.0 + 2.0 * (r / alpha).ceil());
    let stations_per_side = (mon_side / config.alen).ceil() + 1.0;
    let stations = stations_per_side * stations_per_side;
    // Focal events per second: velocity changes + focal cell crossings.
    let focal_events = velocity_uplinks + n_f * crossing_rate;
    // Queries per focal ≈ n_q / n_f; one broadcast per query (ungrouped).
    let broadcasts = focal_events * (n_q / n_f) * stations;

    // (4) New-query unicasts (eager): a crossing object gets one when its
    // new cell carries queries. Per-cell query load:
    let cells = (side / alpha).ceil().powi(2);
    let mon_cells = ((mon_side / alpha).round()).powi(2).max(1.0);
    let queries_per_cell = n_q * mon_cells / cells;
    let new_query_unicasts = if eager {
        n_o * crossing_rate * queries_per_cell.min(1.0)
    } else {
        0.0
    };

    // (5) Result-change uplinks: objects cross a query's circular boundary
    // at rate ≈ (2/π)·v·(2·2r)/area-normalized density; per query the
    // expected boundary crossings are n_o/area · perimeter · v·(2/π).
    let density = n_o / (side * side);
    let per_query = density * (2.0 * std::f64::consts::PI * r) * v * (2.0 / std::f64::consts::PI);
    let result_uplinks = n_q * per_query * config.selectivity;

    AlphaCost {
        alpha,
        cell_change_uplinks,
        velocity_uplinks,
        broadcasts,
        new_query_unicasts,
        result_uplinks,
    }
}

/// Sweeps candidate α values and returns the predicted cost curve.
pub fn sweep(config: &SimConfig, alphas: &[f64]) -> Vec<AlphaCost> {
    let m = WorkloadMoments::from_config(config);
    alphas.iter().map(|&a| predict(config, &m, a)).collect()
}

/// Analytical expected LQT size (drives Figures 10–12): a query with
/// radius `r` has a monitoring region of `(1 + 2⌈r/α⌉)²` cells; a uniform
/// object lies inside it with probability `mon_cells / total_cells` and
/// installs the query only when the filter passes (probability =
/// selectivity). Zipf-weighted over the radius classes.
pub fn expected_lqt_size(config: &SimConfig, alpha: f64) -> f64 {
    let side = config.side();
    let cells = (side / alpha).ceil().powi(2);
    let weights: Vec<f64> = (1..=config.radius_means.len())
        .map(|k| 1.0 / (k as f64).powf(config.zipf_param))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mean_mon_cells: f64 = config
        .radius_means
        .iter()
        .zip(&weights)
        .map(|(&r, &w)| {
            let span = 1.0 + 2.0 * (r * config.radius_factor / alpha).ceil();
            span * span * w / total_w
        })
        .sum();
    config.num_queries as f64 * (mean_mon_cells / cells).min(1.0) * config.selectivity
}

/// The α minimizing the predicted total messaging cost over a log-spaced
/// candidate set in [0.5, 16] (Table 1's range).
pub fn optimal_alpha(config: &SimConfig) -> f64 {
    let candidates: Vec<f64> = (0..=40).map(|i| 0.5 * 1.09f64.powi(i)).collect();
    let m = WorkloadMoments::from_config(config);
    candidates
        .into_iter()
        .map(|a| (a, predict(config, &m, a).total()))
        .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
        .map(|(a, _)| a)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_are_sane() {
        let m = WorkloadMoments::from_config(&SimConfig::default());
        // Zipf mean of {100,50,150,200,250} at 0.8 is ~118 mph; half for
        // the uniform speed draw -> ~0.016 mi/s.
        assert!(
            (0.012..0.022).contains(&m.mean_speed),
            "mean speed {}",
            m.mean_speed
        );
        // Zipf mean of {3,2,1,4,5} ~ 2.7 miles.
        assert!(
            (2.2..3.2).contains(&m.mean_radius),
            "mean radius {}",
            m.mean_radius
        );
        // 1000 draws over 10000 objects -> ~951 distinct focals.
        assert!(
            (900.0..1000.0).contains(&m.num_focals),
            "focals {}",
            m.num_focals
        );
    }

    #[test]
    fn cost_curve_is_u_shaped() {
        let config = SimConfig::default();
        let alphas: Vec<f64> = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let curve = sweep(&config, &alphas);
        let totals: Vec<f64> = curve.iter().map(|c| c.total()).collect();
        // Small α dominated by cell changes, large α by broadcasts: the
        // extremes must exceed the middle.
        let mid = totals[3].min(totals[4]);
        assert!(totals[0] > mid, "α=0.25 should cost more than the middle");
        assert!(totals[7] > mid, "α=32 should cost more than the middle");
    }

    #[test]
    fn optimal_alpha_in_paper_range() {
        // The paper observes α ∈ [4, 6] as ideal for its default workload;
        // the analytic model should land in the same ballpark.
        let a = optimal_alpha(&SimConfig::default());
        assert!(
            (2.0..10.0).contains(&a),
            "model optimum {a} outside plausible range"
        );
    }

    #[test]
    fn components_shift_with_alpha() {
        let config = SimConfig::default();
        let m = WorkloadMoments::from_config(&config);
        let small = predict(&config, &m, 0.5);
        let mid = predict(&config, &m, 4.0);
        let large = predict(&config, &m, 16.0);
        assert!(small.cell_change_uplinks > large.cell_change_uplinks);
        // Past the sweet spot, larger monitoring regions mean more
        // stations per broadcast. (At very small α broadcasts are also
        // high — driven by focal cell-change churn — hence mid vs large.)
        assert!(large.broadcasts > mid.broadcasts);
        // Velocity uplinks do not depend on α.
        assert!((small.velocity_uplinks - large.velocity_uplinks).abs() < 1e-9);
    }

    #[test]
    fn expected_lqt_matches_simulation_within_2x() {
        // The closed-form LQT size should track the measured Figure 10/12
        // values within a factor of two across the α range (the normal
        // radius spread and boundary effects account for the slack).
        use crate::mobieyes_run::MobiEyesSim;
        for alpha in [2.0, 5.0, 10.0] {
            let config = SimConfig::small_test(71).with_alpha(alpha);
            let predicted = expected_lqt_size(&config, alpha);
            let measured = MobiEyesSim::new(config).run().avg_lqt_size;
            assert!(
                predicted < measured * 2.0 + 0.2 && measured < predicted * 2.0 + 0.2,
                "alpha={alpha}: predicted {predicted}, measured {measured}"
            );
        }
    }

    #[test]
    fn expected_lqt_grows_with_alpha_and_queries() {
        let c = SimConfig::default();
        assert!(expected_lqt_size(&c, 16.0) > expected_lqt_size(&c, 4.0));
        assert!(expected_lqt_size(&c, 4.0) > expected_lqt_size(&c, 1.0));
        let more = SimConfig::default().with_queries(2000);
        assert!(
            (expected_lqt_size(&more, 5.0) / expected_lqt_size(&c, 5.0) - 2.0).abs() < 1e-9,
            "LQT size is linear in the query count"
        );
    }

    #[test]
    fn lazy_mode_removes_nonfocal_costs() {
        let eager = SimConfig::default();
        let lazy = SimConfig::default().with_propagation(mobieyes_core::Propagation::Lazy);
        let me = WorkloadMoments::from_config(&eager);
        let ml = WorkloadMoments::from_config(&lazy);
        let ce = predict(&eager, &me, 5.0);
        let cl = predict(&lazy, &ml, 5.0);
        assert!(cl.cell_change_uplinks < ce.cell_change_uplinks / 5.0);
        assert_eq!(cl.new_query_unicasts, 0.0);
    }
}
