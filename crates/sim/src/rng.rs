//! Deterministic random number generation and the samplers the paper's
//! workload needs: zipf (query radius means, object speed classes) and
//! normal (query radius spread).
//!
//! A hand-rolled splitmix64/xorshift generator keeps the whole simulation
//! reproducible from a single `u64` seed with no external dependencies in
//! the hot path.

/// A small, fast, seedable PRNG (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.unit() * n as f64) as usize % n
    }

    /// A fresh independent generator (for splitting streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Zipf distribution over ranks `0..k` with exponent `s`:
/// `P(rank i) ∝ 1/(i+1)^s`. The paper draws query-radius means and object
/// speed classes from their lists "following a zipf distribution with
/// parameter 0.8" — earlier list entries are more likely.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(k: usize, s: f64) -> Self {
        assert!(k > 0);
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for i in 0..k {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..k`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Normal distribution via the Box–Muller transform. The paper draws each
/// query's radius from a normal with the zipf-chosen mean and σ = mean/5.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    pub mean: f64,
    pub std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0);
        Normal { mean, std_dev }
    }

    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u1 = rng.unit().max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2 = rng.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_is_in_range_and_well_spread() {
        let mut rng = Rng::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn below_covers_all_values() {
        let mut rng = Rng::new(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let v = rng.range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = Rng::new(4);
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn zipf_favors_early_ranks() {
        let z = Zipf::new(5, 0.8);
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Monotone decreasing frequencies (allowing small noise).
        for i in 1..5 {
            assert!(
                counts[i] < counts[i - 1] + 500,
                "zipf counts not decreasing: {counts:?}"
            );
        }
        // Rank 0 with s=0.8 over 5 ranks gets 1/Σ(1/k^0.8) ≈ 38.5 %.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((0.37..0.40).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 0.8);
        let mut rng = Rng::new(6);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(3.0, 0.6);
        let mut rng = Rng::new(7);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((2.97..3.03).contains(&mean), "mean {mean}");
        assert!((0.32..0.40).contains(&var), "var {var} (expect ~0.36)");
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let n = Normal::new(2.5, 0.0);
        let mut rng = Rng::new(8);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 2.5);
        }
    }
}
