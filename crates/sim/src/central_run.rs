//! Drivers for the centralized comparison points.
//!
//! Two kinds of measurements:
//!
//! - [`CentralSim`] runs a real centralized engine (object index or query
//!   index) over the shared mobility trace and times its per-tick server
//!   work — the Figure 1/3 baselines.
//! - [`MessagingModel`] computes the wireless traffic of the *naive*
//!   (position per tick) and *central optimal* (dead-reckoned velocity
//!   reports) reporting schemes — the Figure 5–9 baselines. These schemes
//!   send everything uplink and nothing downlink.

use crate::config::SimConfig;
use crate::metrics::{sim_keys, RunMetrics};
use crate::mobility::Mobility;
use crate::truth::{result_error, GroundTruth};
use crate::workload::Workload;
use mobieyes_baselines::{
    CentralEngine, ObjectIndexEngine, ObjectReport, QueryDef, QueryIndexEngine,
};
use mobieyes_core::{Filter, ObjectId, Properties, QueryId};
use mobieyes_geo::{LinearMotion, QueryRegion};
use mobieyes_net::meter::keys as net_keys;
use mobieyes_net::RadioModel;
use mobieyes_telemetry::{Phase, Telemetry};
use std::sync::Arc;

/// Which centralized engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentralKind {
    ObjectIndex,
    QueryIndex,
}

/// A centralized engine driven by the shared mobility trace.
pub struct CentralSim {
    config: SimConfig,
    kind: CentralKind,
    mobility: Mobility,
    object_index: Option<ObjectIndexEngine>,
    query_index: Option<QueryIndexEngine>,
    truth: GroundTruth,
    reports: Vec<ObjectReport>,
    tick_index: usize,
    telemetry: Telemetry,
}

impl CentralSim {
    pub fn new(config: SimConfig, kind: CentralKind) -> Self {
        Self::with_telemetry(config, kind, Telemetry::new())
    }

    /// Builds a centralized engine run recording into the injected sink.
    pub fn with_telemetry(config: SimConfig, kind: CentralKind, telemetry: Telemetry) -> Self {
        let workload = Workload::generate(&config);
        let mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );
        let mut object_index = None;
        let mut query_index = None;
        {
            let engine: &mut dyn CentralEngine = match kind {
                CentralKind::ObjectIndex => object_index.insert(ObjectIndexEngine::new()),
                CentralKind::QueryIndex => query_index.insert(QueryIndexEngine::new()),
            };
            for i in 0..workload.objects.len() {
                engine.register_object(ObjectId(i as u32), Properties::new());
            }
            for (q, spec) in workload.queries.iter().enumerate() {
                engine.install_query(QueryDef {
                    qid: QueryId(q as u32),
                    focal: ObjectId(spec.focal_idx as u32),
                    region: QueryRegion::circle(spec.radius),
                    filter: Arc::new(Filter::with_selectivity(
                        workload.selectivity,
                        spec.filter_salt,
                    )),
                });
            }
        }
        let max_radius = workload
            .queries
            .iter()
            .map(|q| q.radius)
            .fold(1.0f64, f64::max);
        let truth = GroundTruth::new(&workload, max_radius.max(config.alpha))
            .with_threads(config.resolved_threads());
        CentralSim {
            config,
            kind,
            mobility,
            object_index,
            query_index,
            truth,
            reports: Vec::new(),
            tick_index: 0,
            telemetry,
        }
    }

    /// The shared instrumentation sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn engine(&mut self) -> &mut dyn CentralEngine {
        match self.kind {
            CentralKind::ObjectIndex => self.object_index.as_mut().unwrap(),
            CentralKind::QueryIndex => self.query_index.as_mut().unwrap(),
        }
    }

    /// Runs warm-up + measured ticks; returns server-load and accuracy
    /// metrics (messaging for the centralized schemes is modeled by
    /// [`MessagingModel`]).
    pub fn run(&mut self) -> RunMetrics {
        let total = self.config.warmup_ticks + self.config.ticks;
        for k in 0..total {
            if k == self.config.warmup_ticks {
                // Measurement starts here: drop warm-up wall time.
                self.telemetry.reset();
            }
            self.tick_index += 1;
            let t = self.tick_index as f64 * self.config.time_step;
            self.telemetry.set_now(t);
            {
                let _span = self.telemetry.span(Phase::Mobility);
                self.mobility.step();
            }
            self.reports.clear();
            for i in 0..self.mobility.len() {
                self.reports.push(ObjectReport {
                    oid: ObjectId(i as u32),
                    pos: self.mobility.positions[i],
                    vel: self.mobility.velocities[i],
                    tm: t,
                });
            }
            let reports = std::mem::take(&mut self.reports);
            {
                let _span = self.telemetry.span(Phase::Mediation);
                self.engine().tick(&reports, t);
            }
            self.reports = reports;

            if k >= self.config.warmup_ticks {
                // Borrow the engine by field (not through `&self`) so it can
                // coexist with the mutable borrow the evaluator scratch needs.
                let engine: &dyn CentralEngine = match self.kind {
                    CentralKind::ObjectIndex => self.object_index.as_ref().unwrap(),
                    CentralKind::QueryIndex => self.query_index.as_ref().unwrap(),
                };
                let truth = self.truth.evaluate(&self.mobility.positions);
                for (q, t_set) in truth.iter().enumerate() {
                    if let Some(reported) = engine.result(QueryId(q as u32)) {
                        self.telemetry
                            .gauge_add(sim_keys::TRUTH_ERROR_SUM, result_error(t_set, reported));
                        self.telemetry.incr(sim_keys::TRUTH_ERROR_SAMPLES);
                    }
                }
            }
        }
        let name = match self.kind {
            CentralKind::ObjectIndex => "object-index",
            CentralKind::QueryIndex => "query-index",
        };
        RunMetrics::from_snapshot(
            name,
            self.config.ticks,
            self.config.measured_seconds(),
            self.mobility.len(),
            &self.telemetry.snapshot(),
        )
    }
}

/// Which centralized reporting scheme to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessagingKind {
    /// Every object uploads its position each time step if it moved.
    Naive,
    /// Every object uploads a velocity-vector report only when its true
    /// position deviates from the advertised linear motion by more than Δ
    /// — "the minimum amount of information required for a centralized
    /// approach ... unless there is an assumption about object
    /// trajectories".
    CentralOptimal,
}

/// Message accounting for the naive / central-optimal schemes.
pub struct MessagingModel {
    config: SimConfig,
    kind: MessagingKind,
    mobility: Mobility,
    advertised: Vec<LinearMotion>,
    prev_positions: Vec<mobieyes_geo::Point>,
    tick_index: usize,
    telemetry: Telemetry,
}

/// Wire size of a naive position report: tag + oid + pos + tm.
pub const NAIVE_REPORT_BYTES: usize = 1 + 4 + 16 + 8;
/// Wire size of a velocity report (same as the MobiEyes uplink).
pub const VELOCITY_REPORT_BYTES: usize = 1 + 4 + 40;

impl MessagingModel {
    pub fn new(config: SimConfig, kind: MessagingKind) -> Self {
        Self::with_telemetry(config, kind, Telemetry::new())
    }

    /// Builds a messaging model recording into the injected sink.
    pub fn with_telemetry(config: SimConfig, kind: MessagingKind, telemetry: Telemetry) -> Self {
        let workload = Workload::generate(&config);
        let mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );
        let advertised = (0..mobility.len())
            .map(|i| LinearMotion::new(mobility.positions[i], mobility.velocities[i], 0.0))
            .collect();
        let prev_positions = mobility.positions.clone();
        MessagingModel {
            config,
            kind,
            mobility,
            advertised,
            prev_positions,
            tick_index: 0,
            telemetry,
        }
    }

    /// The shared instrumentation sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn run(&mut self) -> RunMetrics {
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        let total = self.config.warmup_ticks + self.config.ticks;
        for k in 0..total {
            self.tick_index += 1;
            let t = self.tick_index as f64 * self.config.time_step;
            self.telemetry.set_now(t);
            self.prev_positions
                .copy_from_slice(&self.mobility.positions);
            self.mobility.step();
            if k < self.config.warmup_ticks {
                // Keep dead-reckoning state warm but do not count traffic.
                if self.kind == MessagingKind::CentralOptimal {
                    self.reckon(t, &mut 0, &mut 0);
                }
                continue;
            }
            let (tick_msgs, tick_bytes) = {
                let mut m = 0u64;
                let mut b = 0u64;
                match self.kind {
                    MessagingKind::Naive => {
                        for i in 0..self.mobility.len() {
                            if self.mobility.positions[i] != self.prev_positions[i] {
                                m += 1;
                                b += NAIVE_REPORT_BYTES as u64;
                            }
                        }
                    }
                    MessagingKind::CentralOptimal => {
                        self.reckon(t, &mut m, &mut b);
                    }
                }
                (m, b)
            };
            self.telemetry.add(net_keys::UPLINK_MSGS, tick_msgs);
            self.telemetry.add(net_keys::UPLINK_BYTES, tick_bytes);
            msgs += tick_msgs;
            bytes += tick_bytes;
        }
        let duration = self.config.measured_seconds();
        let n = self.mobility.len().max(1);
        let mut m = RunMetrics::from_snapshot(
            match self.kind {
                MessagingKind::Naive => "naive",
                MessagingKind::CentralOptimal => "central-optimal",
            },
            self.config.ticks,
            duration,
            n,
            &self.telemetry.snapshot(),
        );
        debug_assert_eq!(m.uplink_bytes, bytes);
        let _ = msgs;
        m.set_power(&RadioModel::default(), bytes as f64 / n as f64, 0.0);
        m
    }

    /// One dead-reckoning pass: report objects whose true position drifted
    /// more than Δ from their advertised motion.
    fn reckon(&mut self, t: f64, msgs: &mut u64, bytes: &mut u64) {
        for i in 0..self.mobility.len() {
            let pos = self.mobility.positions[i];
            if self.advertised[i].should_report(t, pos, self.config.delta) {
                *msgs += 1;
                *bytes += VELOCITY_REPORT_BYTES as u64;
                self.advertised[i] = LinearMotion::new(pos, self.mobility.velocities[i], t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_reach_near_exact_results() {
        for kind in [CentralKind::ObjectIndex, CentralKind::QueryIndex] {
            let m = CentralSim::new(SimConfig::small_test(41), kind).run();
            assert!(
                m.avg_result_error < 1e-9,
                "{:?} should be exact, error = {}",
                kind,
                m.avg_result_error
            );
            assert!(m.server_seconds_per_tick > 0.0);
        }
    }

    #[test]
    fn naive_sends_one_message_per_moving_object_per_tick() {
        let c = SimConfig::small_test(42);
        let m = MessagingModel::new(c.clone(), MessagingKind::Naive).run();
        // Nearly all 300 objects move every tick: ~300 msgs / 30 s = ~10/s.
        let expect = c.num_objects as f64 / c.time_step;
        assert!(
            m.msgs_per_second > 0.8 * expect && m.msgs_per_second <= expect * 1.01,
            "naive rate {} vs expected ~{}",
            m.msgs_per_second,
            expect
        );
    }

    #[test]
    fn central_optimal_sends_fewer_messages_than_naive() {
        let c = SimConfig::small_test(43);
        let naive = MessagingModel::new(c.clone(), MessagingKind::Naive).run();
        let opt = MessagingModel::new(c, MessagingKind::CentralOptimal).run();
        assert!(
            opt.msgs_per_second < naive.msgs_per_second / 2.0,
            "central-optimal {} should be far below naive {}",
            opt.msgs_per_second,
            naive.msgs_per_second
        );
        assert!(opt.msgs_per_second > 0.0);
    }

    #[test]
    fn messaging_power_is_uplink_only() {
        let c = SimConfig::small_test(44);
        let m = MessagingModel::new(c, MessagingKind::Naive).run();
        assert!(m.avg_power_mw > 0.0);
        assert_eq!(m.avg_received_bytes_per_object, 0.0);
        assert_eq!(m.downlink_msgs_per_second, 0.0);
    }
}
