//! Aggregated per-run measurements — one `RunMetrics` per simulation run,
//! covering every quantity the paper's figures plot.
//!
//! Since the telemetry redesign `RunMetrics` is a thin view: the drivers
//! record into a shared [`mobieyes_telemetry::MetricsRegistry`] and
//! [`RunMetrics::from_snapshot`] derives the per-second / per-object
//! rates from a [`MetricsSnapshot`].

use mobieyes_core::object::agent_keys;
use mobieyes_net::meter::keys as net_keys;
use mobieyes_net::RadioModel;
use mobieyes_telemetry::MetricsSnapshot;

/// The simulation-harness telemetry keys (ground-truth accounting).
pub mod sim_keys {
    /// Sum of per-query result errors vs exact ground truth (gauge).
    pub const TRUTH_ERROR_SUM: &str = "truth.error_sum";
    /// Number of (query, tick) error samples (counter).
    pub const TRUTH_ERROR_SAMPLES: &str = "truth.error_samples";
}

/// Metrics of one measured simulation run (warm-up excluded).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Human-readable label ("mobieyes-eqp", "object-index", ...).
    pub label: String,
    /// Measured ticks.
    pub ticks: usize,
    /// Measured wall-clock span of simulated time, seconds.
    pub duration_s: f64,
    /// Mean wall-clock seconds the server/engine spent per tick
    /// (Figures 1 and 3's server-load metric).
    pub server_seconds_per_tick: f64,
    /// Messages per second on the wireless medium (Figures 4, 5, 7, 8).
    pub msgs_per_second: f64,
    /// Uplink component (Figure 6).
    pub uplink_msgs_per_second: f64,
    /// Downlink component (unicasts + broadcasts).
    pub downlink_msgs_per_second: f64,
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
    /// Mean LQT size over objects and ticks (Figures 10–12).
    pub avg_lqt_size: f64,
    /// Mean queries evaluated per object per tick.
    pub avg_evals_per_object_tick: f64,
    /// Mean evaluations skipped by safe periods per object per tick.
    pub avg_safe_period_skips: f64,
    /// Mean microseconds per object per tick spent processing the LQT
    /// (Figure 13's processing-load metric).
    pub avg_eval_micros_per_object_tick: f64,
    /// Mean result error vs exact ground truth (Figure 2's metric).
    pub avg_result_error: f64,
    /// Mean per-object communication power, milliwatts (Figure 9).
    pub avg_power_mw: f64,
    /// Mean bytes sent / received per object over the run.
    pub avg_sent_bytes_per_object: f64,
    pub avg_received_bytes_per_object: f64,
}

impl RunMetrics {
    /// Derives the full metrics view from a telemetry snapshot taken at
    /// the end of a measured run.
    ///
    /// `server_seconds` (the engine's wall time over the measured ticks)
    /// is taken from the snapshot's `mediation` profiler phase. Power is
    /// *not* filled in here — it needs per-node traffic, which lives
    /// outside the registry; call [`set_power`](Self::set_power).
    pub fn from_snapshot(
        label: impl Into<String>,
        ticks: usize,
        duration_s: f64,
        n_objects: usize,
        snapshot: &MetricsSnapshot,
    ) -> Self {
        let n = n_objects.max(1) as f64;
        let t = ticks.max(1) as f64;
        let duration = if duration_s > 0.0 { duration_s } else { 1.0 };
        let uplink_msgs = snapshot.counter(net_keys::UPLINK_MSGS);
        let unicast_msgs = snapshot.counter(net_keys::UNICAST_MSGS);
        let broadcast_msgs = snapshot.counter(net_keys::BROADCAST_MSGS);
        // Server load = everything the server/engine does in a tick:
        // the mediation pass plus the result-ingestion pass.
        let mediation_nanos: u64 = snapshot
            .profiler
            .iter()
            .filter(|p| p.phase == "mediation" || p.phase == "ingest")
            .map(|p| p.nanos)
            .sum();
        let samples = snapshot.counter(sim_keys::TRUTH_ERROR_SAMPLES);
        RunMetrics {
            label: label.into(),
            ticks,
            duration_s,
            server_seconds_per_tick: mediation_nanos as f64 / 1e9 / t,
            msgs_per_second: (uplink_msgs + unicast_msgs + broadcast_msgs) as f64 / duration,
            uplink_msgs_per_second: uplink_msgs as f64 / duration,
            downlink_msgs_per_second: (unicast_msgs + broadcast_msgs) as f64 / duration,
            uplink_bytes: snapshot.counter(net_keys::UPLINK_BYTES),
            downlink_bytes: snapshot.counter(net_keys::UNICAST_BYTES)
                + snapshot.counter(net_keys::BROADCAST_BYTES),
            avg_lqt_size: snapshot
                .histogram(agent_keys::LQT_SIZE)
                .map(|h| h.mean())
                .unwrap_or(0.0),
            avg_evals_per_object_tick: snapshot.counter(agent_keys::EVALUATED) as f64 / (n * t),
            avg_safe_period_skips: snapshot.counter(agent_keys::SKIPPED_SAFE_PERIOD) as f64
                / (n * t),
            avg_eval_micros_per_object_tick: snapshot.wall(agent_keys::EVAL_NANOS) as f64
                / 1e3
                / (n * t),
            avg_result_error: if samples > 0 {
                snapshot.gauge(sim_keys::TRUTH_ERROR_SUM) / samples as f64
            } else {
                0.0
            },
            ..Default::default()
        }
    }

    /// Fills the power fields from per-object byte means and a radio model.
    pub fn set_power(&mut self, radio: &RadioModel, sent: f64, received: f64) {
        self.avg_sent_bytes_per_object = sent;
        self.avg_received_bytes_per_object = received;
        if self.duration_s > 0.0 {
            self.avg_power_mw = radio.average_power(
                sent.round() as u64,
                received.round() as u64,
                self.duration_s,
            ) * 1e3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobieyes_telemetry::{Phase, Telemetry};

    #[test]
    fn power_from_traffic() {
        let mut m = RunMetrics {
            duration_s: 100.0,
            ..Default::default()
        };
        m.set_power(&RadioModel::default(), 1000.0, 2000.0);
        assert!(m.avg_power_mw > 0.0);
        assert_eq!(m.avg_sent_bytes_per_object, 1000.0);
        // More sent bytes -> strictly more power.
        let mut m2 = RunMetrics {
            duration_s: 100.0,
            ..Default::default()
        };
        m2.set_power(&RadioModel::default(), 2000.0, 2000.0);
        assert!(m2.avg_power_mw > m.avg_power_mw);
    }

    #[test]
    fn zero_duration_leaves_power_zero() {
        let mut m = RunMetrics::default();
        m.set_power(&RadioModel::default(), 1000.0, 2000.0);
        assert_eq!(m.avg_power_mw, 0.0);
    }

    #[test]
    fn view_derives_rates_from_snapshot() {
        let tel = Telemetry::new();
        tel.add(net_keys::UPLINK_MSGS, 100);
        tel.add(net_keys::UPLINK_BYTES, 4_000);
        tel.add(net_keys::UNICAST_MSGS, 10);
        tel.add(net_keys::UNICAST_BYTES, 500);
        tel.add(net_keys::BROADCAST_MSGS, 40);
        tel.add(net_keys::BROADCAST_BYTES, 2_000);
        tel.add(agent_keys::EVALUATED, 200);
        tel.wall_add(agent_keys::EVAL_NANOS, 2_000_000);
        tel.observe(agent_keys::LQT_SIZE, 2.0);
        tel.observe(agent_keys::LQT_SIZE, 4.0);
        tel.gauge_add(sim_keys::TRUTH_ERROR_SUM, 0.5);
        tel.add(sim_keys::TRUTH_ERROR_SAMPLES, 10);
        // 10 ticks of mediation wall time.
        tel.with_registry(|_| ());
        for _ in 0..10 {
            tel.timed(Phase::Mediation, || ());
        }
        let snap = tel.snapshot();
        let m = RunMetrics::from_snapshot("test", 10, 300.0, 20, &snap);
        assert_eq!(m.msgs_per_second, 150.0 / 300.0);
        assert_eq!(m.uplink_msgs_per_second, 100.0 / 300.0);
        assert_eq!(m.downlink_msgs_per_second, 50.0 / 300.0);
        assert_eq!(m.uplink_bytes, 4_000);
        assert_eq!(m.downlink_bytes, 2_500);
        assert_eq!(m.avg_lqt_size, 3.0);
        assert_eq!(m.avg_evals_per_object_tick, 1.0);
        assert_eq!(m.avg_result_error, 0.05);
        assert_eq!(m.avg_eval_micros_per_object_tick, 10.0);
    }
}
