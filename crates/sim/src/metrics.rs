//! Aggregated per-run measurements — one `RunMetrics` per simulation run,
//! covering every quantity the paper's figures plot.

use mobieyes_net::RadioModel;

/// Metrics of one measured simulation run (warm-up excluded).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Human-readable label ("mobieyes-eqp", "object-index", ...).
    pub label: String,
    /// Measured ticks.
    pub ticks: usize,
    /// Measured wall-clock span of simulated time, seconds.
    pub duration_s: f64,
    /// Mean wall-clock seconds the server/engine spent per tick
    /// (Figures 1 and 3's server-load metric).
    pub server_seconds_per_tick: f64,
    /// Messages per second on the wireless medium (Figures 4, 5, 7, 8).
    pub msgs_per_second: f64,
    /// Uplink component (Figure 6).
    pub uplink_msgs_per_second: f64,
    /// Downlink component (unicasts + broadcasts).
    pub downlink_msgs_per_second: f64,
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
    /// Mean LQT size over objects and ticks (Figures 10–12).
    pub avg_lqt_size: f64,
    /// Mean queries evaluated per object per tick.
    pub avg_evals_per_object_tick: f64,
    /// Mean evaluations skipped by safe periods per object per tick.
    pub avg_safe_period_skips: f64,
    /// Mean microseconds per object per tick spent processing the LQT
    /// (Figure 13's processing-load metric).
    pub avg_eval_micros_per_object_tick: f64,
    /// Mean result error vs exact ground truth (Figure 2's metric).
    pub avg_result_error: f64,
    /// Mean per-object communication power, milliwatts (Figure 9).
    pub avg_power_mw: f64,
    /// Mean bytes sent / received per object over the run.
    pub avg_sent_bytes_per_object: f64,
    pub avg_received_bytes_per_object: f64,
}

impl RunMetrics {
    /// Fills the power fields from per-object byte means and a radio model.
    pub fn set_power(&mut self, radio: &RadioModel, sent: f64, received: f64) {
        self.avg_sent_bytes_per_object = sent;
        self.avg_received_bytes_per_object = received;
        if self.duration_s > 0.0 {
            self.avg_power_mw =
                radio.average_power(sent.round() as u64, received.round() as u64, self.duration_s) * 1e3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_from_traffic() {
        let mut m = RunMetrics { duration_s: 100.0, ..Default::default() };
        m.set_power(&RadioModel::default(), 1000.0, 2000.0);
        assert!(m.avg_power_mw > 0.0);
        assert_eq!(m.avg_sent_bytes_per_object, 1000.0);
        // More sent bytes -> strictly more power.
        let mut m2 = RunMetrics { duration_s: 100.0, ..Default::default() };
        m2.set_power(&RadioModel::default(), 2000.0, 2000.0);
        assert!(m2.avg_power_mw > m.avg_power_mw);
    }

    #[test]
    fn zero_duration_leaves_power_zero() {
        let mut m = RunMetrics::default();
        m.set_power(&RadioModel::default(), 1000.0, 2000.0);
        assert_eq!(m.avg_power_mw, 0.0);
    }
}
