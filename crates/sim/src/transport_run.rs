//! Driving live multi-process deployments: the coordinator-side
//! [`ClusterClient`] and an in-process host for partition services
//! (tests and single-machine smoke runs use it; `mobieyes-serve`
//! runs the same service loop behind a real process boundary).

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::mobieyes_run::MobiEyesSim;
use mobieyes_cluster::serve_partition;
use mobieyes_net::{Endpoint, FramedConn, Listener, TransportError};
use mobieyes_telemetry::Telemetry;
use std::thread::JoinHandle;
use std::time::Duration;

/// The coordinator side of a live deployment: one framed connection per
/// partition service, agents and the agent-facing network staying in this
/// process. Only the server tier's partition ops cross the wire.
pub struct ClusterClient {
    conns: Vec<FramedConn>,
}

impl ClusterClient {
    /// Connects to every endpoint in partition order, retrying each for up
    /// to `timeout` (freshly spawned services may still be binding),
    /// completes the hello exchange and checks the service at position `p`
    /// actually announces partition `p`.
    pub fn connect(endpoints: &[Endpoint], timeout: Duration) -> Result<Self, TransportError> {
        let mut conns = Vec::with_capacity(endpoints.len());
        for (p, ep) in endpoints.iter().enumerate() {
            let stream = ep.connect_with_retry(timeout)?;
            let mut conn = FramedConn::new(stream);
            conn.send_hello(0)?;
            let announced = conn.expect_hello()?;
            if announced != p as u32 {
                return Err(TransportError::Handshake(format!(
                    "service at {ep} announced partition {announced}, expected {p}"
                )));
            }
            conns.push(conn);
        }
        Ok(ClusterClient { conns })
    }

    /// The number of connected partition services.
    pub fn num_partitions(&self) -> usize {
        self.conns.len()
    }

    /// Builds the remote deployment. The cluster is sharded over the
    /// connected services — one partition each, regardless of
    /// `config.partitions` (which selects the in-process layout only).
    pub fn into_sim(self, config: SimConfig, telemetry: Telemetry) -> MobiEyesSim {
        MobiEyesSim::with_remote_cluster(config, telemetry, self.conns)
    }

    /// Runs the configured workload to completion against the live
    /// services, shuts them down, and returns the run metrics plus the
    /// final result digest.
    pub fn run(self, config: SimConfig) -> (RunMetrics, u64) {
        let mut sim = self.into_sim(config, Telemetry::new());
        let metrics = sim.run();
        let digest = sim.result_digest();
        sim.shutdown();
        (metrics, digest)
    }
}

/// Partition services hosted on in-process threads — the same service
/// loop `mobieyes-serve partition` runs, minus the process boundary.
/// Useful wherever a test needs real sockets without managing child
/// processes.
pub struct HostedPartitions {
    endpoints: Vec<Endpoint>,
    handles: Vec<JoinHandle<Result<(), TransportError>>>,
}

impl HostedPartitions {
    /// Binds `n` fresh endpoints — loopback TCP with OS-assigned ports, or
    /// Unix-domain sockets in the temp dir — and serves one partition on
    /// each from its own thread.
    pub fn spawn(n: usize, uds: bool) -> Result<Self, TransportError> {
        let mut endpoints = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for p in 0..n {
            let ep = if uds {
                Endpoint::Uds(unique_service_path(p))
            } else {
                Endpoint::Tcp("127.0.0.1:0".into())
            };
            let listener = Listener::bind(&ep)?;
            endpoints.push(listener.local_endpoint()?);
            handles.push(std::thread::spawn(move || {
                serve_partition(listener, p as u32)
            }));
        }
        Ok(HostedPartitions { endpoints, handles })
    }

    /// The bound service endpoints, in partition order.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Waits for every service to exit its loop; returns the first
    /// failure, if any. Call after the client has sent `Shutdown` (by
    /// dropping through [`ClusterClient::run`] or `MobiEyesSim::shutdown`),
    /// or this blocks forever.
    pub fn join(self) -> Result<(), TransportError> {
        let mut first: Option<TransportError> = None;
        for handle in self.handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first.get_or_insert(e);
                }
                Err(_) => {
                    first.get_or_insert(TransportError::Protocol(
                        "partition service thread panicked".into(),
                    ));
                }
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A fresh, collision-free Unix-domain socket path for a hosted service.
fn unique_service_path(partition: usize) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mobieyes-part{partition}-{}-{seq}.sock",
        std::process::id()
    ))
}
