//! Struct-of-arrays scheduling mirror for the million-object tick path.
//!
//! At paper scale (10k objects) walking every agent's heap state each tick
//! is fine; at 100k–1M it dominates the run. The observation behind the
//! fast engine: in a MobiEyes steady state almost every agent is *cold* —
//! it stayed in its grid cell, is not focal, received no downlink, and has
//! an empty LQT (or one entirely inside its safe period). For such agents
//! the seed tick is provably a no-op apart from a constant telemetry
//! footprint, so the scheduler only needs a few bytes per agent to decide
//! to skip it: its flat cell id, three boolean flags, its LQT length and
//! its earliest safe-period deadline. [`AgentSoa`] mirrors exactly that
//! into parallel vectors (positions and velocities already live in
//! [`crate::mobility::Mobility`]'s own parallel vectors), sharded with the
//! same contiguous chunks as the agents themselves, so the hot loops scan
//! dense arrays and touch `MovingObjectAgent` heap state only for agents
//! that actually do protocol work that tick.
//!
//! The mirror is *conservative*: whenever a step leaves the fast path
//! (churn, offline agents, downlink faults, the seed engine), it is marked
//! invalid wholesale and rebuilt lazily from agent state on the next fast
//! step. Skipped agents have stale `pos`/`vel` inside the agent struct;
//! the one ordering rule that keeps this sound is that any agent about to
//! run `tick_process` is first re-synced through `tick_motion` (a silent
//! position/velocity store when the cell is unchanged and the agent is not
//! focal) — `synced_at` carries the tick stamp that enforces it.
//!
//! Equivalence contract (pinned by `tests/engine_equivalence.rs`): per
//! tick, per shard sink, the fast path reproduces the seed path's exact
//! message sequences and metric totals — cold agents restore their
//! `agent.lqt_size` zero-sample via one batched [`observe_n`] call, and
//! safe-period-skipped agents restore their `agent.skipped_safe_period`
//! increment and LQT-size sample without touching the B-tree. The only
//! deliberately unrestored signal is `agent.eval_nanos`, a wall-clock
//! timer excluded from protocol equality.
//!
//! [`observe_n`]: mobieyes_telemetry::Telemetry::observe_n

use mobieyes_core::{Downlink, MovingObjectAgent};
use mobieyes_geo::GridRect;

/// Flag bit: the agent is focal for at least one monitoring query. Focal
/// agents can emit dead-reckoning reports without crossing a cell, so the
/// motion phase can never skip them.
pub const FLAG_FOCAL: u8 = 1;
/// Flag bit: the agent's LQT is non-empty (it has queries to evaluate).
pub const FLAG_LQT: u8 = 1 << 1;
/// Flag bit: departures are buffered for the next evaluation; these force
/// a full `tick_process` even inside every entry's safe period.
pub const FLAG_PENDING: u8 = 1 << 2;
/// Flag bit: the filter-shadow table is non-empty. A shadowed query makes
/// otherwise-inert broadcasts observable (sequence refreshes, shadow
/// teardown), so the inert-delivery skip requires this bit clear.
pub const FLAG_SHADOW: u8 = 1 << 3;

/// `synced_at` sentinel: agent `pos`/`vel` never synced under this mirror.
pub const NEVER: u32 = u32::MAX;

/// Per-shard reusable buffers for the fast processing phase. Cleared, not
/// reallocated, every tick — steady-state ticks allocate nothing.
#[derive(Default)]
pub struct ShardScratch {
    /// The current agent's inbox as indices into the tick's downlink
    /// queues: `k < unicasts.len()` selects `unicasts[k]`, anything above
    /// selects `broadcasts[k - unicasts.len()]` (queue order preserved:
    /// unicasts first, then covering broadcasts, as `Net::deliver` does).
    pub ib: Vec<u32>,
    /// Received-byte ledger `(node, bytes)` replayed into the real
    /// network's per-node meters after the shard scope ends.
    pub rx: Vec<(u32, usize)>,
}

/// A shard's mutable window over the parallel vectors; one per worker,
/// produced by [`shard_views`] with the same chunk size as the agent
/// slices so `view[off]` and `agents[off]` are the same object.
pub struct SoaShard<'a> {
    pub cells: &'a mut [u32],
    pub flags: &'a mut [u8],
    pub lqt_len: &'a mut [u32],
    pub safe_until: &'a mut [f64],
    pub synced_at: &'a mut [u32],
}

impl SoaShard<'_> {
    /// Re-mirrors one agent's scheduling state after it ran a real tick
    /// phase (anything may have changed: downlinks install queries, cell
    /// crossings drop them, `FocalNotify` flips focal-ness).
    #[inline]
    pub fn refresh(&mut self, off: usize, agent: &MovingObjectAgent) {
        let (flags, lqt_len, safe_until) = classify(agent);
        self.flags[off] = flags;
        self.lqt_len[off] = lqt_len;
        self.safe_until[off] = safe_until;
    }
}

/// Computes one agent's `(flags, lqt_len, safe_until)` mirror row.
#[inline]
pub fn classify(agent: &MovingObjectAgent) -> (u8, u32, f64) {
    let len = agent.lqt_len();
    let mut flags = 0u8;
    if agent.has_mq() {
        flags |= FLAG_FOCAL;
    }
    if len > 0 {
        flags |= FLAG_LQT;
    }
    if agent.has_pending_departures() {
        flags |= FLAG_PENDING;
    }
    if !agent.shadow_is_empty() {
        flags |= FLAG_SHADOW;
    }
    (flags, len as u32, agent.min_safe_deadline())
}

/// Per-tick classification of one broadcast for the inert-delivery skip:
/// whether an agent with an empty LQT, no pending departures and an empty
/// shadow table can drop the message unprocessed (bytes still metered —
/// reception is physical, processing is not).
#[derive(Clone, Copy)]
pub enum BcastClass {
    /// `VelocityChange`: only refreshes installed or shadowed queries, so
    /// it is a no-op for every agent the skip flags admit.
    Inert,
    /// `QueryState`: a no-op exactly when the receiver's cell lies
    /// *outside* this monitoring region (the outside branch only removes
    /// state the agent does not have); inside, it installs or shadows.
    Outside(GridRect),
    /// Everything else (removals write tombstones, heartbeats trigger
    /// uplinks, ...): never skippable.
    Hot,
}

impl BcastClass {
    pub fn of(msg: &Downlink) -> BcastClass {
        match msg {
            Downlink::VelocityChange { .. } => BcastClass::Inert,
            Downlink::QueryState { info } => BcastClass::Outside(info.mon_region),
            _ => BcastClass::Hot,
        }
    }
}

/// The struct-of-arrays mirror itself, plus the persistent scratch the
/// fast phases reuse tick over tick.
pub struct AgentSoa {
    /// Flat (clamped) grid-cell id per agent — the motion-phase skip key.
    pub cells: Vec<u32>,
    /// `FLAG_*` bits per agent.
    pub flags: Vec<u8>,
    /// LQT length per agent (restores the batched telemetry on skips).
    pub lqt_len: Vec<u32>,
    /// Earliest safe-period deadline per agent (`-inf` when unarmed);
    /// the whole agent skips evaluation while `t < safe_until`.
    pub safe_until: Vec<f64>,
    /// Tick stamp of the agent's last `pos`/`vel` sync ([`NEVER`] = not
    /// since the last rebuild). Guards the stale-position rule above.
    pub synced_at: Vec<u32>,
    /// Sorted `(node, unicast queue index)` runs for the tick — the
    /// persistent replacement for the per-tick `HashMap<u32, Vec<usize>>`
    /// the seed parallel path used to rebuild. Sorting the pairs keeps
    /// each node's queue order because the index component is strictly
    /// increasing within a node.
    pub pairs: Vec<(u32, u32)>,
    /// Sorted `(station, broadcast queue index)` runs for the tick: the
    /// station-bucketed broadcast index. Delivery probes only the 3×3
    /// station neighborhood of an agent instead of scanning every
    /// broadcast (a station's circle reaches `alen·√2/2 < 1.5·alen`, so
    /// no center outside the neighborhood can cover the agent).
    pub bcast_pairs: Vec<(u32, u32)>,
    /// `station -> first index in bcast_pairs` (length `stations + 1`),
    /// so a station's run is an O(1) slice.
    pub bcast_offsets: Vec<u32>,
    /// Per-broadcast [`BcastClass`] for the tick, indexed by queue
    /// position.
    pub bcast_class: Vec<BcastClass>,
    /// One reusable scratch per shard.
    pub scratch: Vec<ShardScratch>,
    /// Whether the mirror matches agent state. Any step that leaves the
    /// fast path clears this; the next fast step rebuilds lazily.
    pub valid: bool,
}

impl AgentSoa {
    pub fn new(n: usize, shards: usize) -> Self {
        AgentSoa {
            cells: vec![0; n],
            flags: vec![0; n],
            lqt_len: vec![0; n],
            safe_until: vec![f64::NEG_INFINITY; n],
            synced_at: vec![NEVER; n],
            pairs: Vec::new(),
            bcast_pairs: Vec::new(),
            bcast_offsets: Vec::new(),
            bcast_class: Vec::new(),
            scratch: (0..shards).map(|_| ShardScratch::default()).collect(),
            valid: false,
        }
    }

    /// Re-mirrors row `i` (rebuild path; the sharded phases go through
    /// [`SoaShard::refresh`]).
    #[inline]
    pub fn refresh_row(&mut self, i: usize, agent: &MovingObjectAgent) {
        let (flags, lqt_len, safe_until) = classify(agent);
        self.flags[i] = flags;
        self.lqt_len[i] = lqt_len;
        self.safe_until[i] = safe_until;
    }

    /// Classifies the tick's broadcasts for the inert-delivery skip, in
    /// queue order.
    pub fn classify_broadcasts<'a>(&mut self, messages: impl Iterator<Item = &'a Downlink>) {
        self.bcast_class.clear();
        self.bcast_class.extend(messages.map(BcastClass::of));
    }

    /// Rebuilds the station-bucketed broadcast index for the tick from
    /// each broadcast's station id, in queue order. Sorting the `(station,
    /// queue index)` pairs keeps every station's run in ascending queue
    /// order (the index component is strictly increasing).
    pub fn bucket_broadcasts(&mut self, stations: usize, station_ids: impl Iterator<Item = u32>) {
        self.bcast_pairs.clear();
        for (k, s) in station_ids.enumerate() {
            self.bcast_pairs.push((s, k as u32));
        }
        self.bcast_pairs.sort_unstable();
        self.bcast_offsets.clear();
        self.bcast_offsets.resize(stations + 1, 0);
        for &(s, _) in &self.bcast_pairs {
            self.bcast_offsets[s as usize + 1] += 1;
        }
        for i in 0..stations {
            self.bcast_offsets[i + 1] += self.bcast_offsets[i];
        }
    }
}

/// Splits the parallel vectors into per-shard windows with the same chunk
/// size the tick engine uses for the agent slices.
pub fn shard_views<'a>(
    cells: &'a mut [u32],
    flags: &'a mut [u8],
    lqt_len: &'a mut [u32],
    safe_until: &'a mut [f64],
    synced_at: &'a mut [u32],
    chunk: usize,
) -> Vec<SoaShard<'a>> {
    cells
        .chunks_mut(chunk)
        .zip(flags.chunks_mut(chunk))
        .zip(lqt_len.chunks_mut(chunk))
        .zip(safe_until.chunks_mut(chunk))
        .zip(synced_at.chunks_mut(chunk))
        .map(
            |((((cells, flags), lqt_len), safe_until), synced_at)| SoaShard {
                cells,
                flags,
                lqt_len,
                safe_until,
                synced_at,
            },
        )
        .collect()
}
