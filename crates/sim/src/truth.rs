//! Exact ground-truth query results, grid-bucket accelerated.
//!
//! The Figure 2 error metric compares reported results against the *correct*
//! result: "the number of missing object identifiers in the result
//! (compared to the correct result) divided by the size of the correct
//! query result". This module computes the correct results exactly from
//! true positions (no dead reckoning, no network delay).
//!
//! Evaluation runs every measured tick, so the evaluator keeps a
//! persistent per-query result set that is cleared and refilled instead
//! of allocating a fresh `Vec<BTreeSet>` each call, and — queries being
//! independent — splits the query range across worker threads when
//! configured with more than one (see [`GroundTruth::with_threads`]).

use crate::workload::Workload;
use mobieyes_core::{Filter, ObjectId, Properties};
use mobieyes_geo::{Circle, Grid, Point, Rect};
use std::collections::BTreeSet;

/// Exact evaluator over a workload's query set.
#[derive(Debug)]
pub struct GroundTruth {
    grid: Grid,
    /// Object indices per bucket (flat row-major).
    buckets: Vec<Vec<u32>>,
    filters: Vec<Filter>,
    radii: Vec<f64>,
    focal_idx: Vec<usize>,
    /// Per-query result scratch, reused across evaluations.
    results: Vec<BTreeSet<ObjectId>>,
    /// Worker threads for the per-query loop (1 = inline).
    threads: usize,
}

impl GroundTruth {
    /// Builds the evaluator. `bucket_side` trades bucket count against
    /// candidates per query; the max query radius is a good value.
    pub fn new(workload: &Workload, bucket_side: f64) -> Self {
        let grid = Grid::new(workload.universe, bucket_side.max(0.5));
        let filters: Vec<Filter> = workload
            .queries
            .iter()
            .map(|q| Filter::with_selectivity(workload.selectivity, q.filter_salt))
            .collect();
        GroundTruth {
            buckets: vec![Vec::new(); grid.num_cells()],
            grid,
            results: vec![BTreeSet::new(); filters.len()],
            filters,
            radii: workload.queries.iter().map(|q| q.radius).collect(),
            focal_idx: workload.queries.iter().map(|q| q.focal_idx).collect(),
            threads: 1,
        }
    }

    /// Sets the worker-thread count for the per-query evaluation loop.
    /// Results are identical at any count — queries write disjoint sets.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Computes the exact result of every query for the given positions.
    /// Returns one set of object ids per query, in workload query order;
    /// the sets live in the evaluator and stay valid until the next call.
    pub fn evaluate(&mut self, positions: &[Point]) -> &[BTreeSet<ObjectId>] {
        for b in self.buckets.iter_mut() {
            b.clear();
        }
        for (i, &p) in positions.iter().enumerate() {
            let cell = self.grid.cell_of(p);
            self.buckets[self.grid.flat_index(cell)].push(i as u32);
        }
        // Destructure so the worker closures can borrow the read-only
        // parts while the result chunks are borrowed mutably.
        let GroundTruth {
            grid,
            buckets,
            filters,
            radii,
            focal_idx,
            results,
            threads,
        } = self;
        // Reborrow the read-only parts as shared slices (`Copy`) so every
        // worker closure can capture them.
        let grid: &Grid = grid;
        let buckets: &[Vec<u32>] = buckets;
        let filters: &[Filter] = filters;
        let radii: &[f64] = radii;
        let focal_idx: &[usize] = focal_idx;
        let nq = radii.len();
        let workers = (*threads).min(nq.max(1));
        if workers <= 1 {
            for (q, set) in results.iter_mut().enumerate() {
                eval_query(grid, buckets, filters, radii, focal_idx, positions, q, set);
            }
            return results;
        }
        let chunk = nq.div_ceil(workers);
        std::thread::scope(|s| {
            for (c, res_chunk) in results.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                s.spawn(move || {
                    for (off, set) in res_chunk.iter_mut().enumerate() {
                        let q = base + off;
                        eval_query(grid, buckets, filters, radii, focal_idx, positions, q, set);
                    }
                });
            }
        });
        results
    }
}

/// Evaluates one query into its (reused) result set.
#[allow(clippy::too_many_arguments)]
fn eval_query(
    grid: &Grid,
    buckets: &[Vec<u32>],
    filters: &[Filter],
    radii: &[f64],
    focal_idx: &[usize],
    positions: &[Point],
    q: usize,
    set: &mut BTreeSet<ObjectId>,
) {
    set.clear();
    let props = Properties::new();
    let center = positions[focal_idx[q]];
    let circle = Circle::new(center, radii[q]);
    let bbox = circle.bbox();
    let cells = grid.cells_overlapping(&clip_to(&bbox, &grid.universe));
    for cell in cells.iter() {
        for &oi in &buckets[grid.flat_index(cell)] {
            let pos = positions[oi as usize];
            if circle.contains_point(pos) && filters[q].matches(ObjectId(oi), &props) {
                set.insert(ObjectId(oi));
            }
        }
    }
}

/// Clips a rect to the universe so out-of-range bboxes still map to cells.
fn clip_to(r: &Rect, u: &Rect) -> Rect {
    r.intersection(u).unwrap_or(Rect::from_point(u.low()))
}

/// The Figure 2 error of one reported result against the truth:
/// `missing / |truth|`, or 0 when the truth is empty.
pub fn result_error(truth: &BTreeSet<ObjectId>, reported: &BTreeSet<ObjectId>) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let missing = truth.difference(reported).count();
    missing as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::workload::Workload;

    #[test]
    fn matches_naive_nested_loop() {
        let c = SimConfig::small_test(21);
        let w = Workload::generate(&c);
        let mut gt = GroundTruth::new(&w, 5.0);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let results = gt.evaluate(&positions).to_vec();
        // Naive check.
        let props = Properties::new();
        for (q, spec) in w.queries.iter().enumerate() {
            let center = positions[spec.focal_idx];
            let filter = Filter::with_selectivity(w.selectivity, spec.filter_salt);
            let expect: BTreeSet<ObjectId> = positions
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    center.distance(**p) <= spec.radius
                        && filter.matches(ObjectId(*i as u32), &props)
                })
                .map(|(i, _)| ObjectId(i as u32))
                .collect();
            assert_eq!(results[q], expect, "query {q}");
        }
    }

    #[test]
    fn bucket_size_does_not_change_results() {
        let c = SimConfig::small_test(22);
        let w = Workload::generate(&c);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let a = GroundTruth::new(&w, 2.0).evaluate(&positions).to_vec();
        let b = GroundTruth::new(&w, 11.0).evaluate(&positions).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let c = SimConfig::small_test(23);
        let w = Workload::generate(&c);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let sequential = GroundTruth::new(&w, 5.0).evaluate(&positions).to_vec();
        for threads in [2, 4, 8] {
            let parallel = GroundTruth::new(&w, 5.0)
                .with_threads(threads)
                .evaluate(&positions)
                .to_vec();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_cleared_between_evaluations() {
        let c = SimConfig::small_test(24);
        let w = Workload::generate(&c);
        let mut gt = GroundTruth::new(&w, 5.0);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let first = gt.evaluate(&positions).to_vec();
        // Evaluate a completely different placement in between: the reused
        // sets must not leak members from one call into the next.
        let far: Vec<Point> = positions.iter().map(|_| Point::new(0.0, 0.0)).collect();
        let _ = gt.evaluate(&far);
        let again = gt.evaluate(&positions).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn error_metric() {
        let t: BTreeSet<ObjectId> = [1, 2, 3, 4].iter().map(|&i| ObjectId(i)).collect();
        let r: BTreeSet<ObjectId> = [1, 2].iter().map(|&i| ObjectId(i)).collect();
        assert_eq!(result_error(&t, &r), 0.5);
        assert_eq!(result_error(&t, &t), 0.0);
        // Extra reported ids are not counted by the paper's metric.
        let extra: BTreeSet<ObjectId> = (0..10).map(ObjectId).collect();
        assert_eq!(result_error(&t, &extra), 0.0);
        assert_eq!(result_error(&BTreeSet::new(), &r), 0.0);
    }
}
