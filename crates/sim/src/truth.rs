//! Exact ground-truth query results, grid-bucket accelerated.
//!
//! The Figure 2 error metric compares reported results against the *correct*
//! result: "the number of missing object identifiers in the result
//! (compared to the correct result) divided by the size of the correct
//! query result". This module computes the correct results exactly from
//! true positions (no dead reckoning, no network delay).

use crate::workload::Workload;
use mobieyes_core::{Filter, ObjectId};
use mobieyes_geo::{Circle, Grid, Point, Rect};
use std::collections::BTreeSet;

/// Exact evaluator over a workload's query set.
#[derive(Debug)]
pub struct GroundTruth {
    grid: Grid,
    /// Object indices per bucket (flat row-major).
    buckets: Vec<Vec<u32>>,
    filters: Vec<Filter>,
    radii: Vec<f64>,
    focal_idx: Vec<usize>,
}

impl GroundTruth {
    /// Builds the evaluator. `bucket_side` trades bucket count against
    /// candidates per query; the max query radius is a good value.
    pub fn new(workload: &Workload, bucket_side: f64) -> Self {
        let grid = Grid::new(workload.universe, bucket_side.max(0.5));
        let filters = workload
            .queries
            .iter()
            .map(|q| Filter::with_selectivity(workload.selectivity, q.filter_salt))
            .collect();
        GroundTruth {
            buckets: vec![Vec::new(); grid.num_cells()],
            grid,
            filters,
            radii: workload.queries.iter().map(|q| q.radius).collect(),
            focal_idx: workload.queries.iter().map(|q| q.focal_idx).collect(),
        }
    }

    /// Computes the exact result of every query for the given positions.
    /// Returns one set of object ids per query, in workload query order.
    pub fn evaluate(&mut self, positions: &[Point]) -> Vec<BTreeSet<ObjectId>> {
        for b in self.buckets.iter_mut() {
            b.clear();
        }
        for (i, &p) in positions.iter().enumerate() {
            let cell = self.grid.cell_of(p);
            self.buckets[self.grid.flat_index(cell)].push(i as u32);
        }
        let props = mobieyes_core::Properties::new();
        let mut results = Vec::with_capacity(self.radii.len());
        for q in 0..self.radii.len() {
            let mut set = BTreeSet::new();
            let center = positions[self.focal_idx[q]];
            let circle = Circle::new(center, self.radii[q]);
            let bbox = circle.bbox();
            let cells = self
                .grid
                .cells_overlapping(&clip_to(&bbox, &self.grid.universe));
            for cell in cells.iter() {
                for &oi in &self.buckets[self.grid.flat_index(cell)] {
                    let pos = positions[oi as usize];
                    if circle.contains_point(pos) && self.filters[q].matches(ObjectId(oi), &props) {
                        set.insert(ObjectId(oi));
                    }
                }
            }
            results.push(set);
        }
        results
    }
}

/// Clips a rect to the universe so out-of-range bboxes still map to cells.
fn clip_to(r: &Rect, u: &Rect) -> Rect {
    r.intersection(u).unwrap_or(Rect::from_point(u.low()))
}

/// The Figure 2 error of one reported result against the truth:
/// `missing / |truth|`, or 0 when the truth is empty.
pub fn result_error(truth: &BTreeSet<ObjectId>, reported: &BTreeSet<ObjectId>) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let missing = truth.difference(reported).count();
    missing as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::workload::Workload;
    use mobieyes_core::Properties;

    #[test]
    fn matches_naive_nested_loop() {
        let c = SimConfig::small_test(21);
        let w = Workload::generate(&c);
        let mut gt = GroundTruth::new(&w, 5.0);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let results = gt.evaluate(&positions);
        // Naive check.
        let props = Properties::new();
        for (q, spec) in w.queries.iter().enumerate() {
            let center = positions[spec.focal_idx];
            let filter = Filter::with_selectivity(w.selectivity, spec.filter_salt);
            let expect: BTreeSet<ObjectId> = positions
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    center.distance(**p) <= spec.radius
                        && filter.matches(ObjectId(*i as u32), &props)
                })
                .map(|(i, _)| ObjectId(i as u32))
                .collect();
            assert_eq!(results[q], expect, "query {q}");
        }
    }

    #[test]
    fn bucket_size_does_not_change_results() {
        let c = SimConfig::small_test(22);
        let w = Workload::generate(&c);
        let positions: Vec<Point> = w.objects.iter().map(|o| o.initial_pos).collect();
        let a = GroundTruth::new(&w, 2.0).evaluate(&positions);
        let b = GroundTruth::new(&w, 11.0).evaluate(&positions);
        assert_eq!(a, b);
    }

    #[test]
    fn error_metric() {
        let t: BTreeSet<ObjectId> = [1, 2, 3, 4].iter().map(|&i| ObjectId(i)).collect();
        let r: BTreeSet<ObjectId> = [1, 2].iter().map(|&i| ObjectId(i)).collect();
        assert_eq!(result_error(&t, &r), 0.5);
        assert_eq!(result_error(&t, &t), 0.0);
        // Extra reported ids are not counted by the paper's metric.
        let extra: BTreeSet<ObjectId> = (0..10).map(ObjectId).collect();
        assert_eq!(result_error(&t, &extra), 0.0);
        assert_eq!(result_error(&BTreeSet::new(), &r), 0.0);
    }
}
