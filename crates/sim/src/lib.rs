//! Simulation harness reproducing the paper's evaluation setup (§5.1).
//!
//! The harness generates Table 1 workloads (zipf-distributed query radii
//! and object speed classes, uniform focal objects, 0.75-selectivity
//! filters), drives a shared deterministic mobility trace through either
//! the MobiEyes protocol or a centralized baseline, measures server load,
//! messaging cost, per-object power and object-side computation, and
//! checks reported results against an exact grid-bucketed ground truth.

pub mod alpha_model;
pub mod approach;
pub mod central_run;
pub mod cluster_run;
pub mod config;
pub mod metrics;
pub mod mobieyes_run;
pub mod mobility;
pub mod rng;
pub mod soa;
pub mod transport_run;
pub mod truth;
pub mod workload;

pub use alpha_model::{optimal_alpha, AlphaCost, WorkloadMoments};
pub use approach::{run_approach, run_approach_with, Approach, RunReport};
pub use central_run::{CentralKind, CentralSim, MessagingKind, MessagingModel};
pub use cluster_run::ClusterSim;
pub use config::{
    ConfigError, EngineKind, RecoveryKind, SimConfig, SimConfigBuilder, TransportKind,
};
pub use metrics::RunMetrics;
pub use mobieyes_run::MobiEyesSim;
pub use mobility::{Mobility, MobilityKind};
pub use rng::{Normal, Rng, Zipf};
pub use transport_run::{ClusterClient, HostedPartitions};
pub use truth::GroundTruth;
pub use workload::{ObjectSpec, QueryWorkloadSpec, Workload};
