//! Workload generation per §5.1 of the paper.
//!
//! - Focal objects of queries: uniform over all objects.
//! - Query radius: normal with mean drawn zipf(0.8) from {3,2,1,4,5} miles
//!   and σ = mean/5 (clamped at a small positive minimum).
//! - Query selectivity: 0.75 via the deterministic selectivity filter.
//! - Object maximum speeds: zipf(0.8) over {100,50,150,200,250} mph.
//! - Initial positions: uniform over the universe of discourse.

use crate::config::SimConfig;
use crate::rng::{Normal, Rng, Zipf};
use mobieyes_geo::{Point, Rect};

/// Static description of one moving object.
#[derive(Debug, Clone, Copy)]
pub struct ObjectSpec {
    pub initial_pos: Point,
    /// Maximum speed in miles per second.
    pub max_speed: f64,
}

/// Static description of one moving query.
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadSpec {
    /// Index of the focal object in the objects vector.
    pub focal_idx: usize,
    /// Circle radius in miles (radius factor already applied).
    pub radius: f64,
    /// Salt for the deterministic selectivity filter.
    pub filter_salt: u64,
}

/// A fully-generated workload: objects plus queries.
#[derive(Debug, Clone)]
pub struct Workload {
    pub universe: Rect,
    pub objects: Vec<ObjectSpec>,
    pub queries: Vec<QueryWorkloadSpec>,
    pub selectivity: f64,
}

impl Workload {
    /// Generates the workload for a configuration, deterministically from
    /// `config.seed`.
    pub fn generate(config: &SimConfig) -> Workload {
        let side = config.side();
        let universe = Rect::new(0.0, 0.0, side, side);
        let mut rng = Rng::new(config.seed ^ 0xA5A5_5A5A);

        let speed_zipf = Zipf::new(config.speed_classes_mph.len(), config.zipf_param);
        let objects: Vec<ObjectSpec> = (0..config.num_objects)
            .map(|_| {
                let pos = Point::new(rng.range(0.0, side), rng.range(0.0, side));
                let mph = config.speed_classes_mph[speed_zipf.sample(&mut rng)];
                ObjectSpec {
                    initial_pos: pos,
                    max_speed: mph / 3600.0,
                }
            })
            .collect();

        let radius_zipf = Zipf::new(config.radius_means.len(), config.zipf_param);
        let queries: Vec<QueryWorkloadSpec> = (0..config.num_queries)
            .map(|i| {
                let pool = config
                    .focal_pool
                    .unwrap_or(config.num_objects)
                    .min(config.num_objects);
                let focal_idx = rng.below(pool);
                let mean = config.radius_means[radius_zipf.sample(&mut rng)];
                let radius_raw = Normal::new(mean, mean / 5.0).sample(&mut rng);
                // Clamp: a non-positive radius is meaningless; the normal
                // tail can produce one (mean/5 σ makes it a 5σ event).
                let radius = (radius_raw * config.radius_factor).max(0.05);
                QueryWorkloadSpec {
                    focal_idx,
                    radius,
                    filter_salt: config.seed ^ (i as u64),
                }
            })
            .collect();

        Workload {
            universe,
            objects,
            queries,
            selectivity: config.selectivity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = SimConfig::small_test(5);
        let a = Workload::generate(&c);
        let b = Workload::generate(&c);
        assert_eq!(a.objects.len(), b.objects.len());
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.initial_pos, y.initial_pos);
            assert_eq!(x.max_speed, y.max_speed);
        }
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.focal_idx, y.focal_idx);
            assert_eq!(x.radius, y.radius);
        }
    }

    #[test]
    fn objects_inside_universe() {
        let c = SimConfig::small_test(6);
        let w = Workload::generate(&c);
        assert_eq!(w.objects.len(), c.num_objects);
        for o in &w.objects {
            assert!(w.universe.contains_point(o.initial_pos));
            assert!(o.max_speed > 0.0);
            // Max 250 mph = 0.0694 miles/sec.
            assert!(o.max_speed <= 250.0 / 3600.0 + 1e-12);
        }
    }

    #[test]
    fn speed_classes_follow_zipf_order() {
        let c = SimConfig {
            num_objects: 20_000,
            num_queries: 1,
            ..SimConfig::default()
        };
        let w = Workload::generate(&c);
        // 100 mph (rank 0) must be the most common class, 250 mph (rank 4)
        // the least common.
        let count = |mph: f64| {
            w.objects
                .iter()
                .filter(|o| (o.max_speed - mph / 3600.0).abs() < 1e-12)
                .count()
        };
        assert!(count(100.0) > count(50.0));
        assert!(count(50.0) > count(250.0));
    }

    #[test]
    fn radii_are_positive_and_scaled_by_factor() {
        let c = SimConfig::small_test(7).with_radius_factor(2.0);
        let base = SimConfig::small_test(7);
        let w2 = Workload::generate(&c);
        let w1 = Workload::generate(&base);
        for (a, b) in w1.queries.iter().zip(&w2.queries) {
            assert!(a.radius > 0.0);
            assert!((b.radius - a.radius * 2.0).abs() < 1e-9 || b.radius == 0.05);
        }
    }

    #[test]
    fn focal_objects_are_valid_indices() {
        let c = SimConfig::small_test(8);
        let w = Workload::generate(&c);
        for q in &w.queries {
            assert!(q.focal_idx < w.objects.len());
        }
    }

    #[test]
    fn radius_distribution_centers_on_zipf_means() {
        let c = SimConfig {
            num_queries: 20_000,
            num_objects: 100,
            ..SimConfig::default()
        };
        let w = Workload::generate(&c);
        let mean = w.queries.iter().map(|q| q.radius).sum::<f64>() / w.queries.len() as f64;
        // Expected mean ≈ Σ zipf(i)·mean_i ≈ 2.7 for {3,2,1,4,5} at s=0.8.
        assert!((2.2..3.2).contains(&mean), "mean radius {mean}");
    }
}
