//! Named driver for partitioned-cluster deployments.
//!
//! [`ClusterSim`] is [`MobiEyesSim`] with the partition count pinned above
//! one: the same workload, mobility trace, tick engine (sequential or
//! sharded) and fault plans, but the server tier is the grid-sharded
//! cluster from `mobieyes-cluster`. A cluster run over `N` partitions is
//! byte-identical — per-tick query results and protocol telemetry — to the
//! single-server run of the same configuration; the extra accessors expose
//! per-partition load and the inter-server bus for scaling experiments.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::mobieyes_run::MobiEyesSim;
use mobieyes_cluster::ClusterServer;
use mobieyes_core::{ObjectId, QueryId};
use mobieyes_net::{ChurnPlan, FaultPlan, MessageMeter};
use mobieyes_telemetry::Telemetry;
use std::collections::BTreeSet;

/// A MobiEyes deployment whose server tier is the grid-sharded cluster.
pub struct ClusterSim {
    inner: MobiEyesSim,
}

impl ClusterSim {
    /// Builds a deployment over `partitions` server partitions
    /// (`partitions >= 1`; 1 exercises the cluster driver surface against
    /// the plain single-server path).
    pub fn new(config: SimConfig, partitions: usize) -> Self {
        Self::with_telemetry(config, partitions, Telemetry::new())
    }

    /// Like [`new`](Self::new) with an injected telemetry sink.
    pub fn with_telemetry(config: SimConfig, partitions: usize, telemetry: Telemetry) -> Self {
        assert!(partitions >= 1, "at least one partition");
        let config = config.with_partitions(partitions);
        ClusterSim {
            inner: MobiEyesSim::with_telemetry(config, telemetry),
        }
    }

    /// The underlying simulation (shared driver surface).
    pub fn sim(&self) -> &MobiEyesSim {
        &self.inner
    }

    pub fn sim_mut(&mut self) -> &mut MobiEyesSim {
        &mut self.inner
    }

    /// The partitioned server tier (`None` when running with a single
    /// partition, which uses the plain server path).
    pub fn cluster(&self) -> Option<&ClusterServer> {
        if self.inner.config.resolved_partitions() > 1 {
            Some(self.inner.cluster())
        } else {
            None
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.inner.config.resolved_partitions()
    }

    /// Inter-server bus traffic (empty meter on a single partition).
    pub fn bus_meter(&self) -> MessageMeter {
        match self.cluster() {
            Some(c) => c.bus_meter(),
            None => MessageMeter::default(),
        }
    }

    /// Injects a fault plan on the server↔server links.
    pub fn set_bus_fault(&mut self, plan: FaultPlan) {
        if self.inner.config.resolved_partitions() > 1 {
            self.inner.cluster_mut().set_bus_fault(plan);
        }
    }

    pub fn set_churn(&mut self, plan: ChurnPlan) {
        self.inner.set_churn(plan);
    }

    pub fn telemetry(&self) -> &Telemetry {
        self.inner.telemetry()
    }

    pub fn query_ids(&self) -> &[QueryId] {
        self.inner.query_ids()
    }

    pub fn query_result(&self, qid: QueryId) -> Option<&BTreeSet<ObjectId>> {
        self.inner.query_result(qid)
    }

    pub fn step(&mut self, measured: bool) {
        self.inner.step(measured);
    }

    pub fn run(&mut self) -> RunMetrics {
        self.inner.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_sim_runs_and_answers_queries() {
        let mut sim = ClusterSim::new(SimConfig::small_test(41), 2);
        sim.run();
        assert_eq!(sim.num_partitions(), 2);
        let total: usize = sim
            .query_ids()
            .iter()
            .filter_map(|&q| sim.query_result(q))
            .map(|r| r.len())
            .sum();
        assert!(total > 0, "no query produced any result");
        sim.cluster().unwrap().check_invariants();
    }

    #[test]
    fn handoff_traffic_flows_on_the_bus() {
        let mut sim = ClusterSim::new(SimConfig::small_test(42), 4);
        sim.run();
        let meter = sim.bus_meter();
        assert!(
            meter.total_msgs() > 0,
            "a 4-partition run must migrate state across borders"
        );
    }
}
