//! A threaded actor deployment of the MobiEyes protocol.
//!
//! The lock-step simulator (`mobieyes-sim`) drives server and agents from
//! one thread. This crate runs the *same* protocol types across real
//! threads: a coordinator owns the server and the network medium, and a
//! pool of worker threads owns disjoint shards of moving-object agents,
//! exchanging ticks and uplink batches over crossbeam channels.
//!
//! Determinism is preserved: agents are partitioned into contiguous index
//! ranges, every worker processes its agents in index order, and the
//! coordinator concatenates uplink batches in shard order — the server
//! observes exactly the same uplink sequence as the lock-step simulator,
//! so results, message counts and server state are bit-identical (verified
//! by the `runtime_equivalence` integration test).

pub mod threaded;

pub use threaded::{ThreadedOutcome, ThreadedSim};
