//! Coordinator + sharded worker threads over std::sync::mpsc channels.

use mobieyes_core::object::agent_keys;
use mobieyes_core::server::Net;
use mobieyes_core::{
    Downlink, Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, QueryId, Server,
    Uplink,
};
use mobieyes_geo::{Grid, Point, QueryRegion, Vec2};
use mobieyes_net::{BaseStationLayout, NodeId, StationId};
use mobieyes_sim::{Mobility, SimConfig, Workload};
use mobieyes_telemetry::{MetricsSnapshot, Phase, Telemetry};
use std::collections::BTreeSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Kinematic state of every object at one tick.
struct KinFrame {
    t: f64,
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
}

/// Downlink messages taken from the network for distributed delivery.
/// Payloads stay behind the network's `Arc`s: fanning a frame out to the
/// workers shares the queue, and delivering a message to an agent clones
/// a reference, never the payload.
struct DownFrame {
    unicasts: Vec<(NodeId, Arc<Downlink>, usize)>,
    broadcasts: Vec<(StationId, Arc<Downlink>, usize)>,
}

enum Cmd {
    /// Phase A: absorb kinematics, emit motion reports.
    Motion {
        kin: Arc<KinFrame>,
    },
    /// Phase B: deliver downlinks, process and evaluate.
    Process {
        down: Arc<DownFrame>,
    },
    Stop,
}

struct WorkerReply {
    shard: usize,
    /// Uplinks in agent-index order within the shard.
    uplinks: Vec<(NodeId, Uplink)>,
    /// (node, bytes) of every physically received downlink message.
    rx: Vec<(u32, usize)>,
}

/// Outcome of a threaded run: the final result of every query (in
/// workload order), aggregate traffic numbers for comparisons, and the
/// full telemetry snapshot of the shared registry.
#[derive(Debug)]
pub struct ThreadedOutcome {
    pub results: Vec<BTreeSet<ObjectId>>,
    pub total_msgs: u64,
    pub uplink_msgs: u64,
    pub downlink_msgs: u64,
    pub avg_lqt_size: f64,
    /// Everything the deployment recorded. Protocol metrics (counters,
    /// events, histograms) are bit-identical to the lock-step simulator;
    /// wall-clock sections differ by construction.
    pub snapshot: MetricsSnapshot,
}

/// A threaded deployment of the protocol over a simulated mobility trace.
pub struct ThreadedSim {
    pub config: SimConfig,
    pub shards: usize,
    telemetry: Telemetry,
}

impl ThreadedSim {
    pub fn new(config: SimConfig, shards: usize) -> Self {
        assert!(shards >= 1);
        ThreadedSim {
            config,
            shards,
            telemetry: Telemetry::new(),
        }
    }

    /// Redirects recording into a shared telemetry sink. The server, the
    /// coordinator network and every worker's agents record into it; the
    /// workers' private uplink buffers do not (uplink traffic is counted
    /// exactly once, when the coordinator forwards it).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The shared instrumentation sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs the full scenario (warm-up + measured ticks) and returns the
    /// final query results and traffic totals.
    pub fn run(&self) -> ThreadedOutcome {
        let config = &self.config;
        let telemetry = self.telemetry.clone();
        let workload = Workload::generate(config);
        let grid = Grid::new(workload.universe, config.alpha);
        // Same lease wiring as the lock-step simulator: durations are
        // configured in ticks, heartbeats fire twice per lease.
        let lease_secs = config.lease_ticks as f64 * config.time_step;
        let heartbeat_secs = (config.lease_ticks / 2).max(1) as f64 * config.time_step;
        let pconf = Arc::new(
            ProtocolConfig::new(grid)
                .with_propagation(config.propagation)
                .with_grouping(config.grouping)
                .with_safe_period(config.safe_period)
                .with_delta(config.delta)
                .with_lease(lease_secs, heartbeat_secs),
        );
        let layout = BaseStationLayout::new(workload.universe, config.alen);
        let mut net = Net::new(layout.clone()).with_telemetry(telemetry.clone());
        let mut server = Server::new(Arc::clone(&pconf)).with_telemetry(telemetry.clone());
        let mut mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );

        // Install the query workload.
        let qids: Vec<QueryId> = workload
            .queries
            .iter()
            .map(|q| {
                server.install_query(
                    ObjectId(q.focal_idx as u32),
                    QueryRegion::circle(q.radius),
                    Filter::with_selectivity(workload.selectivity, q.filter_salt),
                    &mut net,
                )
            })
            .collect();

        // Partition agents into contiguous shards.
        let n = workload.objects.len();
        let shards = self.shards.min(n.max(1));
        let chunk = n.div_ceil(shards);
        let mut worker_handles = Vec::new();
        let mut cmd_txs: Vec<SyncSender<Cmd>> = Vec::new();
        let (reply_tx, reply_rx): (SyncSender<WorkerReply>, Receiver<WorkerReply>) =
            sync_channel(shards);

        for s in 0..shards {
            let lo = s * chunk;
            let hi = ((s + 1) * chunk).min(n);
            let shared = telemetry.clone();
            let agents: Vec<MovingObjectAgent> = (lo..hi)
                .map(|i| {
                    MovingObjectAgent::new(
                        ObjectId(i as u32),
                        Properties::new(),
                        workload.objects[i].max_speed,
                        workload.objects[i].initial_pos,
                        mobility.velocities[i],
                        Arc::clone(&pconf),
                    )
                    .with_telemetry(shared.clone())
                })
                .collect();
            let (tx, rx): (SyncSender<Cmd>, Receiver<Cmd>) = sync_channel(1);
            cmd_txs.push(tx);
            let reply = reply_tx.clone();
            let wl = layout.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_loop(s, lo, agents, wl, rx, reply);
            }));
        }
        drop(reply_tx);

        let ticks = config.warmup_ticks + config.ticks;
        let collect = |net: &mut Net, reply_rx: &Receiver<WorkerReply>| {
            let mut replies: Vec<WorkerReply> = (0..shards)
                .map(|_| reply_rx.recv().expect("worker reply"))
                .collect();
            replies.sort_by_key(|r| r.shard);
            for r in replies {
                for (node, bytes) in r.rx {
                    net.record_node_received(node as usize, bytes);
                }
                for (node, up) in r.uplinks {
                    net.send_uplink(node, up);
                }
            }
        };
        for k in 0..ticks {
            let t = (k + 1) as f64 * config.time_step;
            telemetry.set_now(t);
            {
                let _span = telemetry.span(Phase::Mobility);
                mobility.step();
            }
            let kin = Arc::new(KinFrame {
                t,
                positions: mobility.positions.clone(),
                velocities: mobility.velocities.clone(),
            });
            // Phase A: motion reports from every shard.
            {
                let _span = telemetry.span(Phase::Motion);
                for tx in &cmd_txs {
                    tx.send(Cmd::Motion {
                        kin: Arc::clone(&kin),
                    })
                    .expect("worker alive");
                }
                collect(&mut net, &reply_rx);
            }
            // Fault-tolerance duties (no-op unless leases are configured),
            // queued before mediation exactly as in the lock-step engine.
            server.heartbeat(t, &mut net);
            // Server mediation.
            {
                let _span = telemetry.span(Phase::Mediation);
                server.tick(&mut net);
            }
            // Phase B: distributed delivery + evaluation.
            {
                let _span = telemetry.span(Phase::Process);
                let (unicasts, broadcasts) = net.take_downlinks();
                let down = Arc::new(DownFrame {
                    unicasts,
                    broadcasts,
                });
                for tx in &cmd_txs {
                    tx.send(Cmd::Process {
                        down: Arc::clone(&down),
                    })
                    .expect("worker alive");
                }
                collect(&mut net, &reply_rx);
            }
            // Server result ingestion.
            {
                let _span = telemetry.span(Phase::Ingest);
                server.tick(&mut net);
            }
        }
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        for h in worker_handles {
            h.join().expect("worker thread panicked");
        }

        let meter = net.meter();
        let snapshot = telemetry.snapshot();
        let results = qids
            .iter()
            .map(|&q| server.query_result(q).cloned().unwrap_or_default())
            .collect();
        ThreadedOutcome {
            results,
            total_msgs: meter.total_msgs(),
            uplink_msgs: meter.uplink_msgs,
            downlink_msgs: meter.downlink_msgs(),
            avg_lqt_size: snapshot
                .histogram(agent_keys::LQT_SIZE)
                .map(|h| h.mean())
                .unwrap_or(0.0),
            snapshot,
        }
    }
}

/// The worker thread: owns a contiguous range of agents, delivers downlink
/// frames locally and batches uplinks back to the coordinator.
fn worker_loop(
    shard: usize,
    lo: usize,
    mut agents: Vec<MovingObjectAgent>,
    layout: BaseStationLayout,
    rx: Receiver<Cmd>,
    reply: SyncSender<WorkerReply>,
) {
    // A private network used purely as an uplink buffer so the agent code
    // is identical to the lock-step deployment. Its (private) telemetry is
    // discarded: uplink traffic is metered once, by the coordinator.
    let mut sink = Net::new(layout.clone());
    let mut inbox: Vec<Arc<Downlink>> = Vec::new();
    let mut kin_frame: Option<Arc<KinFrame>> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Stop => break,
            Cmd::Motion { kin } => {
                let mut uplinks: Vec<(NodeId, Uplink)> = Vec::new();
                for (off, agent) in agents.iter_mut().enumerate() {
                    let i = lo + off;
                    agent.tick_motion(kin.t, kin.positions[i], kin.velocities[i], &mut sink);
                    uplinks.extend(sink.drain_uplinks());
                }
                kin_frame = Some(kin);
                reply
                    .send(WorkerReply {
                        shard,
                        uplinks,
                        rx: Vec::new(),
                    })
                    .expect("coordinator alive");
            }
            Cmd::Process { down } => {
                let kin = kin_frame.as_ref().expect("Process follows Motion");
                let mut rx_bytes: Vec<(u32, usize)> = Vec::new();
                let mut uplinks: Vec<(NodeId, Uplink)> = Vec::new();
                for (off, agent) in agents.iter_mut().enumerate() {
                    let i = lo + off;
                    let node = NodeId(i as u32);
                    let pos = kin.positions[i];
                    inbox.clear();
                    // Physical delivery: unicasts addressed to us, broadcasts
                    // whose station covers our position — same semantics as
                    // `NetworkSim::deliver`.
                    for (to, msg, bytes) in &down.unicasts {
                        if *to == node {
                            rx_bytes.push((node.0, *bytes));
                            inbox.push(Arc::clone(msg));
                        }
                    }
                    for (station, msg, bytes) in &down.broadcasts {
                        if layout.covers(*station, pos) {
                            rx_bytes.push((node.0, *bytes));
                            inbox.push(Arc::clone(msg));
                        }
                    }
                    agent.tick_process(kin.t, inbox.iter().map(|m| &**m), &mut sink);
                    uplinks.extend(sink.drain_uplinks());
                }
                reply
                    .send(WorkerReply {
                        shard,
                        uplinks,
                        rx: rx_bytes,
                    })
                    .expect("coordinator alive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_run_completes() {
        let out = ThreadedSim::new(SimConfig::small_test(51), 1).run();
        assert!(out.total_msgs > 0);
        assert!(
            out.results.iter().any(|r| !r.is_empty()),
            "some query has results"
        );
    }

    #[test]
    fn shard_count_does_not_change_outcome() {
        let a = ThreadedSim::new(SimConfig::small_test(52), 1).run();
        let b = ThreadedSim::new(SimConfig::small_test(52), 4).run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.total_msgs, b.total_msgs);
        assert_eq!(a.uplink_msgs, b.uplink_msgs);
        assert_eq!(a.avg_lqt_size, b.avg_lqt_size);
        assert!(
            a.snapshot.protocol_eq(&b.snapshot),
            "protocol metrics diverged across shards"
        );
    }

    #[test]
    fn more_shards_than_objects_is_fine() {
        let mut c = SimConfig::small_test(53);
        c.num_objects = 3;
        c.num_queries = 2;
        c.objects_changing_velocity = 1;
        let out = ThreadedSim::new(c, 16).run();
        assert!(out.total_msgs > 0);
    }
}
