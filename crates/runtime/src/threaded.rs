//! Coordinator + sharded worker threads over crossbeam channels.

use crossbeam::channel::{bounded, Receiver, Sender};
use mobieyes_core::server::Net;
use mobieyes_core::{
    Downlink, Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, QueryId, Server,
    Uplink,
};
use mobieyes_geo::{Grid, Point, QueryRegion, Vec2};
use mobieyes_net::{BaseStationLayout, NodeId, StationId};
use mobieyes_sim::{Mobility, SimConfig, Workload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Kinematic state of every object at one tick.
struct KinFrame {
    t: f64,
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
}

/// Downlink messages taken from the network for distributed delivery.
struct DownFrame {
    unicasts: Vec<(NodeId, Downlink, usize)>,
    broadcasts: Vec<(StationId, Downlink, usize)>,
}

enum Cmd {
    /// Phase A: absorb kinematics, emit motion reports.
    Motion { kin: Arc<KinFrame> },
    /// Phase B: deliver downlinks, process and evaluate.
    Process { down: Arc<DownFrame> },
    Stop,
}

struct WorkerReply {
    shard: usize,
    /// Uplinks in agent-index order within the shard.
    uplinks: Vec<(NodeId, Uplink)>,
    /// (node, bytes) of every physically received downlink message.
    rx: Vec<(u32, usize)>,
    lqt_sum: u64,
}

/// Outcome of a threaded run: the final result of every query (in
/// workload order) plus aggregate traffic numbers for comparisons.
#[derive(Debug)]
pub struct ThreadedOutcome {
    pub results: Vec<BTreeSet<ObjectId>>,
    pub total_msgs: u64,
    pub uplink_msgs: u64,
    pub downlink_msgs: u64,
    pub avg_lqt_size: f64,
}

/// A threaded deployment of the protocol over a simulated mobility trace.
pub struct ThreadedSim {
    pub config: SimConfig,
    pub shards: usize,
}

impl ThreadedSim {
    pub fn new(config: SimConfig, shards: usize) -> Self {
        assert!(shards >= 1);
        ThreadedSim { config, shards }
    }

    /// Runs the full scenario (warm-up + measured ticks) and returns the
    /// final query results and traffic totals.
    pub fn run(&self) -> ThreadedOutcome {
        let config = &self.config;
        let workload = Workload::generate(config);
        let grid = Grid::new(workload.universe, config.alpha);
        let pconf = Arc::new(
            ProtocolConfig::new(grid)
                .with_propagation(config.propagation)
                .with_grouping(config.grouping)
                .with_safe_period(config.safe_period)
                .with_delta(config.delta),
        );
        let layout = BaseStationLayout::new(workload.universe, config.alen);
        let mut net = Net::new(layout.clone());
        let mut server = Server::new(Arc::clone(&pconf));
        let mut mobility = Mobility::with_kind(
            &workload,
            config.objects_changing_velocity,
            config.time_step,
            config.seed,
            config.mobility,
        );

        // Install the query workload.
        let qids: Vec<QueryId> = workload
            .queries
            .iter()
            .map(|q| {
                server.install_query(
                    ObjectId(q.focal_idx as u32),
                    QueryRegion::circle(q.radius),
                    Filter::with_selectivity(workload.selectivity, q.filter_salt),
                    &mut net,
                )
            })
            .collect();

        // Partition agents into contiguous shards.
        let n = workload.objects.len();
        let shards = self.shards.min(n.max(1));
        let chunk = n.div_ceil(shards);
        let mut worker_handles = Vec::new();
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::new();
        let (reply_tx, reply_rx): (Sender<WorkerReply>, Receiver<WorkerReply>) = bounded(shards);

        for s in 0..shards {
            let lo = s * chunk;
            let hi = ((s + 1) * chunk).min(n);
            let agents: Vec<MovingObjectAgent> = (lo..hi)
                .map(|i| {
                    MovingObjectAgent::new(
                        ObjectId(i as u32),
                        Properties::new(),
                        workload.objects[i].max_speed,
                        workload.objects[i].initial_pos,
                        mobility.velocities[i],
                        Arc::clone(&pconf),
                    )
                })
                .collect();
            let (tx, rx): (Sender<Cmd>, Receiver<Cmd>) = bounded(1);
            cmd_txs.push(tx);
            let reply = reply_tx.clone();
            let wl = layout.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_loop(s, lo, agents, wl, rx, reply);
            }));
        }
        drop(reply_tx);

        let ticks = config.warmup_ticks + config.ticks;
        let mut lqt_total = 0u64;
        let mut lqt_samples = 0u64;
        let collect = |net: &mut Net, reply_rx: &Receiver<WorkerReply>, lqt_total: &mut u64| {
            let mut replies: Vec<WorkerReply> =
                (0..shards).map(|_| reply_rx.recv().expect("worker reply")).collect();
            replies.sort_by_key(|r| r.shard);
            for r in replies {
                for (node, bytes) in r.rx {
                    net.meter_mut().record_node_received(node as usize, bytes);
                }
                for (node, up) in r.uplinks {
                    net.send_uplink(node, up);
                }
                *lqt_total += r.lqt_sum;
            }
        };
        for k in 0..ticks {
            let t = (k + 1) as f64 * config.time_step;
            mobility.step();
            let kin = Arc::new(KinFrame {
                t,
                positions: mobility.positions.clone(),
                velocities: mobility.velocities.clone(),
            });
            // Phase A: motion reports from every shard.
            for tx in &cmd_txs {
                tx.send(Cmd::Motion { kin: Arc::clone(&kin) }).expect("worker alive");
            }
            collect(&mut net, &reply_rx, &mut lqt_total);
            // Server mediation.
            server.tick(&mut net);
            // Phase B: distributed delivery + evaluation.
            let (unicasts, broadcasts) = net.take_downlinks();
            let down = Arc::new(DownFrame { unicasts, broadcasts });
            for tx in &cmd_txs {
                tx.send(Cmd::Process { down: Arc::clone(&down) }).expect("worker alive");
            }
            collect(&mut net, &reply_rx, &mut lqt_total);
            lqt_samples += 1;
            // Server result ingestion.
            server.tick(&mut net);
        }
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        for h in worker_handles {
            h.join().expect("worker thread panicked");
        }

        let meter = net.meter();
        let results = qids
            .iter()
            .map(|&q| server.query_result(q).cloned().unwrap_or_default())
            .collect();
        ThreadedOutcome {
            results,
            total_msgs: meter.total_msgs(),
            uplink_msgs: meter.uplink_msgs,
            downlink_msgs: meter.downlink_msgs(),
            avg_lqt_size: if lqt_samples > 0 {
                lqt_total as f64 / (n.max(1) as f64 * ticks.max(1) as f64)
            } else {
                0.0
            },
        }
    }
}

/// The worker thread: owns a contiguous range of agents, delivers downlink
/// frames locally and batches uplinks back to the coordinator.
fn worker_loop(
    shard: usize,
    lo: usize,
    mut agents: Vec<MovingObjectAgent>,
    layout: BaseStationLayout,
    rx: Receiver<Cmd>,
    reply: Sender<WorkerReply>,
) {
    // A private network used purely as an uplink buffer so the agent code
    // is identical to the lock-step deployment.
    let mut sink = Net::new(layout.clone());
    let mut inbox: Vec<Downlink> = Vec::new();
    let mut kin_frame: Option<Arc<KinFrame>> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Stop => break,
            Cmd::Motion { kin } => {
                let mut uplinks: Vec<(NodeId, Uplink)> = Vec::new();
                for (off, agent) in agents.iter_mut().enumerate() {
                    let i = lo + off;
                    agent.tick_motion(kin.t, kin.positions[i], kin.velocities[i], &mut sink);
                    uplinks.extend(sink.drain_uplinks());
                }
                kin_frame = Some(kin);
                reply
                    .send(WorkerReply { shard, uplinks, rx: Vec::new(), lqt_sum: 0 })
                    .expect("coordinator alive");
            }
            Cmd::Process { down } => {
                let kin = kin_frame.as_ref().expect("Process follows Motion");
                let mut rx_bytes: Vec<(u32, usize)> = Vec::new();
                let mut uplinks: Vec<(NodeId, Uplink)> = Vec::new();
                let mut lqt_sum = 0u64;
                for (off, agent) in agents.iter_mut().enumerate() {
                    let i = lo + off;
                    let node = NodeId(i as u32);
                    let pos = kin.positions[i];
                    inbox.clear();
                    // Physical delivery: unicasts addressed to us, broadcasts
                    // whose station covers our position — same semantics as
                    // `NetworkSim::deliver`.
                    for (to, msg, bytes) in &down.unicasts {
                        if *to == node {
                            rx_bytes.push((node.0, *bytes));
                            inbox.push(msg.clone());
                        }
                    }
                    for (station, msg, bytes) in &down.broadcasts {
                        if layout.covers(*station, pos) {
                            rx_bytes.push((node.0, *bytes));
                            inbox.push(msg.clone());
                        }
                    }
                    agent.tick_process(kin.t, &inbox, &mut sink);
                    uplinks.extend(sink.drain_uplinks());
                    lqt_sum += agent.lqt_len() as u64;
                }
                reply
                    .send(WorkerReply { shard, uplinks, rx: rx_bytes, lqt_sum })
                    .expect("coordinator alive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_run_completes() {
        let out = ThreadedSim::new(SimConfig::small_test(51), 1).run();
        assert!(out.total_msgs > 0);
        assert!(out.results.iter().any(|r| !r.is_empty()), "some query has results");
    }

    #[test]
    fn shard_count_does_not_change_outcome() {
        let a = ThreadedSim::new(SimConfig::small_test(52), 1).run();
        let b = ThreadedSim::new(SimConfig::small_test(52), 4).run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.total_msgs, b.total_msgs);
        assert_eq!(a.uplink_msgs, b.uplink_msgs);
        assert_eq!(a.avg_lqt_size, b.avg_lqt_size);
    }

    #[test]
    fn more_shards_than_objects_is_fine() {
        let mut c = SimConfig::small_test(53);
        c.num_objects = 3;
        c.num_queries = 2;
        c.objects_changing_velocity = 1;
        let out = ThreadedSim::new(c, 16).run();
        assert!(out.total_msgs > 0);
    }
}
