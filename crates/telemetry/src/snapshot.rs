//! Point-in-time export of a [`MetricsRegistry`](crate::MetricsRegistry):
//! a plain-data snapshot plus JSON and CSV serializers and parsers.
//!
//! Snapshots split into a *protocol* part (counters, gauges, histograms,
//! events) that is bit-identical across deployments of the same
//! configuration, and a *timing* part (wall timers, profiler phases)
//! that is inherently nondeterministic. [`MetricsSnapshot::protocol_view`]
//! strips the timing part so equivalence tests can compare the rest.

use crate::events::{Event, EventKind};
use crate::json::{self, Value};
use crate::profiler::PhaseTiming;
use crate::registry::{Histogram, MetricsRegistry};
use std::collections::BTreeMap;

/// Exported histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub edges: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A complete, plain-data copy of a registry's state. Events are in
/// canonical order (see `Event::sort_key`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Named wall-clock accumulators, nanoseconds. Nondeterministic.
    pub wall_nanos: BTreeMap<String, u64>,
    /// Per-phase tick profiler timings. Nondeterministic.
    pub profiler: Vec<PhaseTiming>,
    pub events: Vec<Event>,
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    pub fn of(registry: &MetricsRegistry) -> Self {
        MetricsSnapshot {
            counters: registry
                .counters_map()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: registry
                .gauges_map()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: registry
                .histograms_map()
                .iter()
                .map(|(k, h)| (k.to_string(), snapshot_histogram(h)))
                .collect(),
            wall_nanos: registry
                .wall_map()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            profiler: registry.profiler().timings(),
            events: registry.events().sorted(),
            events_dropped: registry.events().dropped(),
        }
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    pub fn wall(&self, key: &str) -> u64 {
        self.wall_nanos.get(key).copied().unwrap_or(0)
    }

    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// Folds another registry's snapshot into this one: counters and wall
    /// accumulators add, gauges and histograms take the other's value for
    /// keys this snapshot lacks, events merge into canonical order. Used
    /// at export time to attach a private sink's data (e.g. the cluster
    /// coordinator's bus sink, which is kept out of the protocol snapshot
    /// the equivalence gates compare) to a user-facing snapshot.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.wall_nanos {
            *self.wall_nanos.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.entry(k.clone()).or_insert(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(|| h.clone());
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.events_dropped += other.events_dropped;
    }

    /// The snapshot with all wall-time data removed: what must match
    /// exactly between the lock-step simulator and the threaded runtime.
    pub fn protocol_view(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            wall_nanos: BTreeMap::new(),
            profiler: Vec::new(),
            ..self.clone()
        }
    }

    /// Protocol equality: everything except wall timers and profiler.
    pub fn protocol_eq(&self, other: &MetricsSnapshot) -> bool {
        self.protocol_view() == other.protocol_view()
    }

    // -- JSON -------------------------------------------------------------

    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    fn to_value(&self) -> Value {
        let num_map = |m: &BTreeMap<String, u64>| {
            Value::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                    .collect(),
            )
        };
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut obj = vec![
                    ("t".to_string(), Value::Num(e.time_s)),
                    ("kind".to_string(), Value::str(e.kind.name())),
                ];
                for (k, v) in e.kind.fields() {
                    obj.push((k.to_string(), Value::Num(v as f64)));
                }
                Value::Obj(obj)
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Obj(vec![
                        (
                            "edges".to_string(),
                            Value::Arr(h.edges.iter().map(|e| Value::Num(*e)).collect()),
                        ),
                        (
                            "counts".to_string(),
                            Value::Arr(h.counts.iter().map(|c| Value::Num(*c as f64)).collect()),
                        ),
                        ("count".to_string(), Value::Num(h.count as f64)),
                        ("sum".to_string(), Value::Num(h.sum)),
                    ]),
                )
            })
            .collect();
        let profiler = self
            .profiler
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("phase".to_string(), Value::str(p.phase)),
                    ("nanos".to_string(), Value::Num(p.nanos as f64)),
                    ("spans".to_string(), Value::Num(p.spans as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("counters".to_string(), num_map(&self.counters)),
            (
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            ("histograms".to_string(), Value::Obj(histograms)),
            ("wall_nanos".to_string(), num_map(&self.wall_nanos)),
            ("profiler".to_string(), Value::Arr(profiler)),
            ("events".to_string(), Value::Arr(events)),
            (
                "events_dropped".to_string(),
                Value::Num(self.events_dropped as f64),
            ),
        ])
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let mut out = MetricsSnapshot::default();
        if let Some(entries) = doc.get("counters").and_then(Value::as_obj) {
            for (k, v) in entries {
                out.counters
                    .insert(k.clone(), v.as_u64().ok_or("counter not a number")?);
            }
        }
        if let Some(entries) = doc.get("gauges").and_then(Value::as_obj) {
            for (k, v) in entries {
                out.gauges
                    .insert(k.clone(), v.as_f64().ok_or("gauge not a number")?);
            }
        }
        if let Some(entries) = doc.get("histograms").and_then(Value::as_obj) {
            for (k, h) in entries {
                let edges = h
                    .get("edges")
                    .and_then(Value::as_arr)
                    .ok_or("histogram missing edges")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("edge not a number"))
                    .collect::<Result<Vec<_>, _>>()?;
                let counts = h
                    .get("counts")
                    .and_then(Value::as_arr)
                    .ok_or("histogram missing counts")?
                    .iter()
                    .map(|v| v.as_u64().ok_or("count not a number"))
                    .collect::<Result<Vec<_>, _>>()?;
                out.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        edges,
                        counts,
                        count: h.get("count").and_then(Value::as_u64).unwrap_or(0),
                        sum: h.get("sum").and_then(Value::as_f64).unwrap_or(0.0),
                    },
                );
            }
        }
        if let Some(entries) = doc.get("wall_nanos").and_then(Value::as_obj) {
            for (k, v) in entries {
                out.wall_nanos
                    .insert(k.clone(), v.as_u64().ok_or("wall not a number")?);
            }
        }
        if let Some(items) = doc.get("profiler").and_then(Value::as_arr) {
            for item in items {
                let phase = item
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("profiler missing phase")?;
                let phase = crate::Phase::from_name(phase).ok_or("unknown profiler phase")?;
                out.profiler.push(PhaseTiming {
                    phase: phase.name(),
                    nanos: item.get("nanos").and_then(Value::as_u64).unwrap_or(0),
                    spans: item.get("spans").and_then(Value::as_u64).unwrap_or(0),
                });
            }
        }
        if let Some(items) = doc.get("events").and_then(Value::as_arr) {
            for item in items {
                out.events.push(parse_event_json(item)?);
            }
        }
        out.events_dropped = doc
            .get("events_dropped")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        Ok(out)
    }

    // -- CSV --------------------------------------------------------------

    /// CSV rows of `section,name,value[,extra[,extra]]`. Histograms pack
    /// their buckets as `edge:count` pairs separated by `;` so every
    /// record stays on one line. Lossless: [`from_csv`](Self::from_csv)
    /// reconstructs the snapshot exactly.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("section,name,value,extra1,extra2\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},{v},,\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge,{k},{v:?},,\n"));
        }
        for (k, h) in &self.histograms {
            let mut buckets = String::new();
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    buckets.push(';');
                }
                match h.edges.get(i) {
                    Some(e) => buckets.push_str(&format!("{e:?}:{c}")),
                    None => buckets.push_str(&format!("+inf:{c}")),
                }
            }
            out.push_str(&format!(
                "histogram,{k},{}|{:?},{buckets},\n",
                h.count, h.sum
            ));
        }
        for (k, v) in &self.wall_nanos {
            out.push_str(&format!("wall,{k},{v},,\n"));
        }
        for p in &self.profiler {
            out.push_str(&format!("profiler,{},{},{},\n", p.phase, p.nanos, p.spans));
        }
        for e in &self.events {
            let fields: Vec<String> = e
                .kind
                .fields()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!(
                "event,{},{:?},{},\n",
                e.kind.name(),
                e.time_s,
                fields.join(";")
            ));
        }
        out.push_str(&format!("events_dropped,,{},,\n", self.events_dropped));
        out
    }

    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut out = MetricsSnapshot::default();
        for (lineno, line) in text.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.splitn(5, ',').collect();
            let err = |msg: &str| format!("csv line {}: {msg}", lineno + 1);
            let section = cols[0];
            let name = cols.get(1).copied().unwrap_or("");
            let value = cols.get(2).copied().unwrap_or("");
            match section {
                "counter" => {
                    out.counters.insert(
                        name.to_string(),
                        value.parse().map_err(|_| err("bad counter"))?,
                    );
                }
                "gauge" => {
                    out.gauges.insert(
                        name.to_string(),
                        value.parse().map_err(|_| err("bad gauge"))?,
                    );
                }
                "histogram" => {
                    let (count, sum) = value
                        .split_once('|')
                        .ok_or_else(|| err("bad histogram value"))?;
                    let mut edges = Vec::new();
                    let mut counts = Vec::new();
                    for pair in cols.get(3).copied().unwrap_or("").split(';') {
                        let (edge, c) = pair.split_once(':').ok_or_else(|| err("bad bucket"))?;
                        if edge != "+inf" {
                            edges.push(edge.parse().map_err(|_| err("bad edge"))?);
                        }
                        counts.push(c.parse().map_err(|_| err("bad bucket count"))?);
                    }
                    out.histograms.insert(
                        name.to_string(),
                        HistogramSnapshot {
                            edges,
                            counts,
                            count: count.parse().map_err(|_| err("bad count"))?,
                            sum: sum.parse().map_err(|_| err("bad sum"))?,
                        },
                    );
                }
                "wall" => {
                    out.wall_nanos.insert(
                        name.to_string(),
                        value.parse().map_err(|_| err("bad wall"))?,
                    );
                }
                "profiler" => {
                    let phase =
                        crate::Phase::from_name(name).ok_or_else(|| err("unknown phase"))?;
                    out.profiler.push(PhaseTiming {
                        phase: phase.name(),
                        nanos: value.parse().map_err(|_| err("bad nanos"))?,
                        spans: cols
                            .get(3)
                            .copied()
                            .unwrap_or("0")
                            .parse()
                            .map_err(|_| err("bad spans"))?,
                    });
                }
                "event" => {
                    let time_s: f64 = value.parse().map_err(|_| err("bad event time"))?;
                    let fields = cols
                        .get(3)
                        .copied()
                        .unwrap_or("")
                        .split(';')
                        .filter(|p| !p.is_empty())
                        .map(|pair| {
                            let (k, v) =
                                pair.split_once('=').ok_or_else(|| err("bad event field"))?;
                            Ok((
                                k.to_string(),
                                v.parse().map_err(|_| err("bad event value"))?,
                            ))
                        })
                        .collect::<Result<Vec<(String, u64)>, String>>()?;
                    let kind = EventKind::from_parts(name, &fields)
                        .ok_or_else(|| err("unknown event kind"))?;
                    out.events.push(Event { time_s, kind });
                }
                "events_dropped" => {
                    out.events_dropped = value.parse().map_err(|_| err("bad drop count"))?;
                }
                other => return Err(err(&format!("unknown section '{other}'"))),
            }
        }
        Ok(out)
    }
}

fn snapshot_histogram(h: &Histogram) -> HistogramSnapshot {
    HistogramSnapshot {
        edges: h.edges().to_vec(),
        counts: h.counts().to_vec(),
        count: h.count(),
        sum: h.sum(),
    }
}

fn parse_event_json(item: &Value) -> Result<Event, String> {
    let time_s = item
        .get("t")
        .and_then(Value::as_f64)
        .ok_or("event missing t")?;
    let name = item
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("event missing kind")?;
    let fields: Vec<(String, u64)> = item
        .as_obj()
        .unwrap_or(&[])
        .iter()
        .filter(|(k, _)| k != "t" && k != "kind")
        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
        .collect();
    let kind = EventKind::from_parts(name, &fields)
        .ok_or_else(|| format!("unknown event kind '{name}'"))?;
    Ok(Event { time_s, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn sample() -> MetricsSnapshot {
        let mut r = MetricsRegistry::new();
        r.add("net.uplink.msgs", 42);
        r.add("srv.uplinks", 40);
        r.gauge_set("truth.error_sum", 0.125);
        r.register_histogram("agent.lqt_size", vec![1.0, 4.0, 16.0]);
        r.observe("agent.lqt_size", 0.0);
        r.observe("agent.lqt_size", 5.0);
        r.observe("agent.lqt_size", 100.0);
        r.wall_add("agent.eval_nanos", 12_345);
        r.profiler_add(Phase::Mediation, 777);
        r.set_now(1.5);
        r.event(EventKind::QueryInstalled { qid: 3, focal: 7 });
        r.event_at(0.5, EventKind::BroadcastFanout { stations: 4 });
        MetricsSnapshot::of(&r)
    }

    #[test]
    fn snapshot_sorts_events_canonically() {
        let s = sample();
        assert_eq!(s.events[0].time_s, 0.5);
        assert_eq!(
            s.events[1].kind,
            EventKind::QueryInstalled { qid: 3, focal: 7 }
        );
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let parsed = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn csv_round_trip() {
        let s = sample();
        let parsed = MetricsSnapshot::from_csv(&s.to_csv()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn protocol_view_strips_wall_time_only() {
        let s = sample();
        let mut other = s.clone();
        other.wall_nanos.insert("agent.eval_nanos".to_string(), 1);
        other.profiler.clear();
        assert!(
            s.protocol_eq(&other),
            "wall/profiler differences must not matter"
        );
        other.counters.insert("net.uplink.msgs".to_string(), 43);
        assert!(!s.protocol_eq(&other), "counter differences must matter");
    }

    #[test]
    fn json_contains_expected_sections() {
        let text = sample().to_json();
        for needle in [
            "\"counters\"",
            "\"profiler\"",
            "\"mediation\"",
            "\"events\"",
            "\"query_installed\"",
            "\"agent.lqt_size\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
