//! Bounded structured event log.
//!
//! Events capture discrete protocol occurrences (query lifecycle,
//! cell-crossings, velocity reports, broadcast fan-out, injected faults)
//! with the *simulation* timestamp at which they happened — never wall
//! time — so the lock-step simulator and the threaded runtime log the
//! same events. Because the threaded runtime records events from worker
//! threads in a nondeterministic interleaving, snapshots sort events into
//! a canonical order before export or comparison.

/// A discrete protocol occurrence at a simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in seconds (not wall time).
    pub time_s: f64,
    pub kind: EventKind,
}

/// What happened. Variants carry the minimal identifying payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A query was installed at the server and assigned an id.
    QueryInstalled { qid: u64, focal: u64 },
    /// A query was explicitly removed.
    QueryRemoved { qid: u64 },
    /// A query's lifetime elapsed and the server expired it.
    QueryExpired { qid: u64 },
    /// A moving object crossed a grid-cell boundary.
    CellCrossing { oid: u64 },
    /// A focal object reported a significant velocity change.
    VelocityReport { oid: u64 },
    /// A server broadcast fanned out to `stations` base stations.
    BroadcastFanout { stations: u64 },
    /// The fault plan dropped a message addressed to `oid`.
    MessageDropped { oid: u64 },
    /// The fault plan duplicated a message addressed to `oid`.
    MessageDuplicated { oid: u64 },
    /// A focal object's lease expired; its queries were torn down and
    /// re-announced.
    LeaseExpired { oid: u64 },
    /// The churn plan took an object offline.
    ObjectOffline { oid: u64 },
    /// The churn plan brought an object back online. `fresh` is 1 when
    /// the object crashed (lost its local state) rather than merely
    /// disconnecting.
    ObjectOnline { oid: u64, fresh: u64 },
    /// The coordinator detected a dead cluster partition.
    PartitionCrashed { partition: u64 },
    /// A dead partition's cells were reassigned to survivors under an
    /// epoch fence.
    PartitionFailedOver { partition: u64, cells: u64 },
    /// A crashed partition rejoined the cluster and re-adopted its
    /// pre-crash cell span.
    PartitionRespawned { partition: u64 },
    /// A due rebalance round did nothing; `reason` is a
    /// `rebalance::SkipReason` discriminant (see `mobieyes-cluster`).
    RebalanceSkipped { reason: u64 },
    /// A rebalance fence installed partition-map generation `generation`,
    /// moving `cells` grid cells between partitions.
    RebalanceInstalled { generation: u64, cells: u64 },
    /// A rebalance fence was abandoned because `partition` died mid-fence;
    /// the previous map generation stays installed.
    RebalanceAborted { partition: u64 },
}

impl EventKind {
    /// Stable machine name used in JSON/CSV export and canonical ordering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QueryInstalled { .. } => "query_installed",
            EventKind::QueryRemoved { .. } => "query_removed",
            EventKind::QueryExpired { .. } => "query_expired",
            EventKind::CellCrossing { .. } => "cell_crossing",
            EventKind::VelocityReport { .. } => "velocity_report",
            EventKind::BroadcastFanout { .. } => "broadcast_fanout",
            EventKind::MessageDropped { .. } => "message_dropped",
            EventKind::MessageDuplicated { .. } => "message_duplicated",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::ObjectOffline { .. } => "object_offline",
            EventKind::ObjectOnline { .. } => "object_online",
            EventKind::PartitionCrashed { .. } => "partition_crashed",
            EventKind::PartitionFailedOver { .. } => "partition_failed_over",
            EventKind::PartitionRespawned { .. } => "partition_respawned",
            EventKind::RebalanceSkipped { .. } => "rebalance_skipped",
            EventKind::RebalanceInstalled { .. } => "rebalance_installed",
            EventKind::RebalanceAborted { .. } => "rebalance_aborted",
        }
    }

    /// Payload as `(field, value)` pairs, in a stable order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::QueryInstalled { qid, focal } => vec![("qid", qid), ("focal", focal)],
            EventKind::QueryRemoved { qid } => vec![("qid", qid)],
            EventKind::QueryExpired { qid } => vec![("qid", qid)],
            EventKind::CellCrossing { oid } => vec![("oid", oid)],
            EventKind::VelocityReport { oid } => vec![("oid", oid)],
            EventKind::BroadcastFanout { stations } => vec![("stations", stations)],
            EventKind::MessageDropped { oid } => vec![("oid", oid)],
            EventKind::MessageDuplicated { oid } => vec![("oid", oid)],
            EventKind::LeaseExpired { oid } => vec![("oid", oid)],
            EventKind::ObjectOffline { oid } => vec![("oid", oid)],
            EventKind::ObjectOnline { oid, fresh } => vec![("oid", oid), ("fresh", fresh)],
            EventKind::PartitionCrashed { partition } => vec![("partition", partition)],
            EventKind::PartitionFailedOver { partition, cells } => {
                vec![("partition", partition), ("cells", cells)]
            }
            EventKind::PartitionRespawned { partition } => vec![("partition", partition)],
            EventKind::RebalanceSkipped { reason } => vec![("reason", reason)],
            EventKind::RebalanceInstalled { generation, cells } => {
                vec![("generation", generation), ("cells", cells)]
            }
            EventKind::RebalanceAborted { partition } => vec![("partition", partition)],
        }
    }

    /// Whether this event describes persistent protocol state (which
    /// queries exist) rather than a transient per-tick occurrence.
    /// Lifecycle events survive a measured-window [`EventLog::reset`] so
    /// an exported snapshot still identifies the installed queries.
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            EventKind::QueryInstalled { .. }
                | EventKind::QueryRemoved { .. }
                | EventKind::QueryExpired { .. }
        )
    }

    /// Inverse of [`name`](Self::name)/[`fields`](Self::fields); used by the
    /// snapshot importers.
    pub fn from_parts(name: &str, fields: &[(String, u64)]) -> Option<EventKind> {
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| *v);
        Some(match name {
            "query_installed" => EventKind::QueryInstalled {
                qid: get("qid")?,
                focal: get("focal")?,
            },
            "query_removed" => EventKind::QueryRemoved { qid: get("qid")? },
            "query_expired" => EventKind::QueryExpired { qid: get("qid")? },
            "cell_crossing" => EventKind::CellCrossing { oid: get("oid")? },
            "velocity_report" => EventKind::VelocityReport { oid: get("oid")? },
            "broadcast_fanout" => EventKind::BroadcastFanout {
                stations: get("stations")?,
            },
            "message_dropped" => EventKind::MessageDropped { oid: get("oid")? },
            "message_duplicated" => EventKind::MessageDuplicated { oid: get("oid")? },
            "lease_expired" => EventKind::LeaseExpired { oid: get("oid")? },
            "object_offline" => EventKind::ObjectOffline { oid: get("oid")? },
            "object_online" => EventKind::ObjectOnline {
                oid: get("oid")?,
                fresh: get("fresh")?,
            },
            "partition_crashed" => EventKind::PartitionCrashed {
                partition: get("partition")?,
            },
            "partition_failed_over" => EventKind::PartitionFailedOver {
                partition: get("partition")?,
                cells: get("cells")?,
            },
            "partition_respawned" => EventKind::PartitionRespawned {
                partition: get("partition")?,
            },
            "rebalance_skipped" => EventKind::RebalanceSkipped {
                reason: get("reason")?,
            },
            "rebalance_installed" => EventKind::RebalanceInstalled {
                generation: get("generation")?,
                cells: get("cells")?,
            },
            "rebalance_aborted" => EventKind::RebalanceAborted {
                partition: get("partition")?,
            },
            _ => return None,
        })
    }
}

impl Event {
    /// Canonical sort key: time, then kind name, then payload values.
    /// Total and deployment-independent, so sorted event lists from the
    /// lock-step simulator and the threaded runtime compare equal.
    pub fn sort_key(&self) -> (u64, &'static str, Vec<u64>) {
        // Simulation times are non-negative finite floats, for which the
        // bit pattern sorts the same way as the value.
        (
            self.time_s.to_bits(),
            self.kind.name(),
            self.kind.fields().iter().map(|(_, v)| *v).collect(),
        )
    }
}

/// Fixed-capacity event buffer. Once full, further events are counted in
/// `dropped` instead of being stored, keeping recording allocation-light
/// and bounded no matter how long a run is.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default bound: generous for test-sized runs, small next to a full
/// simulation's message volume.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub fn push(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Carries overflow counts over from another log during a registry
    /// merge, so a bounded merged log still reports every lost event.
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events sorted into canonical order (see [`Event::sort_key`]).
    pub fn sorted(&self) -> Vec<Event> {
        let mut out = self.events.clone();
        out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        out
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Measured-window reset: drops transient events and the overflow
    /// count but keeps query lifecycle events, which describe state that
    /// persists across the window boundary.
    pub fn reset(&mut self) {
        self.events.retain(|e| e.kind.is_lifecycle());
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_log_counts_overflow() {
        let mut log = EventLog::with_capacity(2);
        for oid in 0..5 {
            log.push(Event {
                time_s: 1.0,
                kind: EventKind::CellCrossing { oid },
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        log.clear();
        assert_eq!(log.len(), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn canonical_order_ignores_insertion_order() {
        let a = Event {
            time_s: 1.0,
            kind: EventKind::CellCrossing { oid: 2 },
        };
        let b = Event {
            time_s: 1.0,
            kind: EventKind::CellCrossing { oid: 1 },
        };
        let c = Event {
            time_s: 0.5,
            kind: EventKind::VelocityReport { oid: 9 },
        };
        let mut log1 = EventLog::default();
        let mut log2 = EventLog::default();
        for e in [&a, &b, &c] {
            log1.push((*e).clone());
        }
        for e in [&c, &a, &b] {
            log2.push((*e).clone());
        }
        assert_eq!(log1.sorted(), log2.sorted());
        assert_eq!(log1.sorted()[0], c);
    }

    #[test]
    fn reset_keeps_lifecycle_events_only() {
        let mut log = EventLog::with_capacity(2);
        log.push(Event {
            time_s: 0.0,
            kind: EventKind::QueryInstalled { qid: 1, focal: 2 },
        });
        log.push(Event {
            time_s: 1.0,
            kind: EventKind::CellCrossing { oid: 3 },
        });
        log.push(Event {
            time_s: 1.0,
            kind: EventKind::CellCrossing { oid: 4 },
        }); // dropped
        assert_eq!(log.dropped(), 1);
        log.reset();
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 0);
        assert!(log.events()[0].kind.is_lifecycle());
    }

    #[test]
    fn kinds_round_trip_through_parts() {
        let kinds = [
            EventKind::QueryInstalled { qid: 1, focal: 2 },
            EventKind::QueryRemoved { qid: 3 },
            EventKind::QueryExpired { qid: 4 },
            EventKind::CellCrossing { oid: 5 },
            EventKind::VelocityReport { oid: 6 },
            EventKind::BroadcastFanout { stations: 7 },
            EventKind::MessageDropped { oid: 8 },
            EventKind::MessageDuplicated { oid: 9 },
            EventKind::LeaseExpired { oid: 10 },
            EventKind::ObjectOffline { oid: 11 },
            EventKind::ObjectOnline { oid: 12, fresh: 1 },
            EventKind::PartitionCrashed { partition: 2 },
            EventKind::PartitionFailedOver {
                partition: 2,
                cells: 64,
            },
            EventKind::PartitionRespawned { partition: 2 },
            EventKind::RebalanceSkipped { reason: 1 },
            EventKind::RebalanceInstalled {
                generation: 3,
                cells: 128,
            },
            EventKind::RebalanceAborted { partition: 1 },
        ];
        for kind in kinds {
            let fields: Vec<(String, u64)> = kind
                .fields()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            assert_eq!(EventKind::from_parts(kind.name(), &fields), Some(kind));
        }
    }
}
