//! The metrics registry: typed counters, gauges and fixed-bucket
//! histograms, plus the event log, tick profiler and wall-time section.
//!
//! Keys are `&'static str` so recording never allocates; storage is
//! `BTreeMap` so iteration (and therefore export) order is deterministic.

use crate::events::{Event, EventKind, EventLog};
use crate::profiler::{Phase, TickProfiler};
use std::collections::BTreeMap;

/// Bucket edges used when a histogram is first observed without an
/// explicit registration: powers of two up to 4096.
pub const DEFAULT_BUCKET_EDGES: [f64; 13] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `edges[i-1] <= v < edges[i]`; the final bucket is the overflow bucket
/// (`v >= edges.last()`), so `counts.len() == edges.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bucket edges must be strictly increasing"
        );
        let buckets = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
        }
    }

    pub fn observe(&mut self, v: f64) {
        let i = self.edges.partition_point(|e| *e <= v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Records `n` identical observations in one update. Because observed
    /// values in this codebase are integer-valued, `v * n` equals the sum
    /// of `n` individual `observe(v)` calls exactly, so a batched record
    /// is indistinguishable from the unbatched one.
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.edges.partition_point(|e| *e <= v);
        self.counts[i] += n;
        self.count += n;
        self.sum += v * n as f64;
    }

    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
    }

    /// Adds another histogram's observations bucket-wise. Both histograms
    /// must have been registered with identical edges. Observed values in
    /// this codebase are integer-valued (sizes, counts), so the `f64` sum
    /// stays exact under any merge order.
    fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "histogram merge requires identical bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The unified instrumentation sink. Not thread-safe by itself; share it
/// across threads through the [`crate::Telemetry`] handle.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Accumulated wall-clock nanoseconds per named timer. Like profiler
    /// spans, wall values are excluded from protocol equivalence.
    wall: BTreeMap<&'static str, u64>,
    profiler: TickProfiler,
    events: EventLog,
    /// Ambient simulation time stamped onto events recorded via
    /// [`event`](Self::event). Drivers advance it once per tick.
    now: f64,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            events: EventLog::with_capacity(capacity),
            ..Default::default()
        }
    }

    // -- counters ---------------------------------------------------------

    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    // -- gauges -----------------------------------------------------------

    pub fn gauge_set(&mut self, key: &'static str, v: f64) {
        self.gauges.insert(key, v);
    }

    pub fn gauge_add(&mut self, key: &'static str, v: f64) {
        *self.gauges.entry(key).or_insert(0.0) += v;
    }

    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    // -- histograms -------------------------------------------------------

    /// Registers (or re-registers, clearing) a histogram with explicit
    /// bucket edges.
    pub fn register_histogram(&mut self, key: &'static str, edges: Vec<f64>) {
        self.histograms.insert(key, Histogram::new(edges));
    }

    /// Records into a histogram, creating it with
    /// [`DEFAULT_BUCKET_EDGES`] on first use.
    pub fn observe(&mut self, key: &'static str, v: f64) {
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(DEFAULT_BUCKET_EDGES.to_vec()))
            .observe(v);
    }

    /// Batched [`observe`](Self::observe): `n` identical observations in
    /// one histogram update.
    pub fn observe_n(&mut self, key: &'static str, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(DEFAULT_BUCKET_EDGES.to_vec()))
            .observe_n(v, n);
    }

    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    // -- wall timers ------------------------------------------------------

    pub fn wall_add(&mut self, key: &'static str, nanos: u64) {
        *self.wall.entry(key).or_insert(0) += nanos;
    }

    pub fn wall(&self, key: &str) -> u64 {
        self.wall.get(key).copied().unwrap_or(0)
    }

    // -- profiler ---------------------------------------------------------

    pub fn profiler_add(&mut self, phase: Phase, nanos: u64) {
        self.profiler.add(phase, nanos);
    }

    pub fn profiler(&self) -> &TickProfiler {
        &self.profiler
    }

    // -- events -----------------------------------------------------------

    /// Sets the ambient simulation time stamped onto subsequent events.
    pub fn set_now(&mut self, t: f64) {
        self.now = t;
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    /// Records an event at the ambient simulation time.
    pub fn event(&mut self, kind: EventKind) {
        let t = self.now;
        self.event_at(t, kind);
    }

    /// Records an event at an explicit simulation time.
    pub fn event_at(&mut self, time_s: f64, kind: EventKind) {
        self.events.push(Event { time_s, kind });
    }

    pub fn events(&self) -> &EventLog {
        &self.events
    }

    // -- lifecycle --------------------------------------------------------

    /// Clears all recorded data (counters, gauges, histogram counts,
    /// wall timers, profiler, events) while keeping histogram
    /// registrations and the event-log capacity. Used by drivers to
    /// discard warm-up data.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.values_mut().for_each(Histogram::clear);
        self.wall.clear();
        self.profiler.clear();
        self.events.reset();
    }

    /// Adds everything `other` recorded into this registry: counters,
    /// gauges and wall timers are summed, histograms are merged
    /// bucket-wise (edges must match), profiler nanos/spans are added and
    /// events are appended in `other`'s insertion order (respecting this
    /// log's capacity; overflow from `other` carries over). This is the
    /// shard-merge primitive of the parallel tick engine: merging shard
    /// registries in ascending shard order reproduces the sequential
    /// recording order exactly.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.entry(k) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut().merge_from(h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
            }
        }
        for (k, v) in &other.wall {
            *self.wall.entry(k).or_insert(0) += v;
        }
        self.profiler.merge_from(other.profiler());
        for e in other.events.events() {
            self.events.push(e.clone());
        }
        self.events.add_dropped(other.events.dropped());
    }

    /// Moves all recorded data out into a fresh registry and leaves this
    /// one empty but reusable: histogram registrations (edges) and the
    /// event-log capacity stay behind, mirroring [`reset`](Self::reset).
    /// Worker sinks are drained once per phase and merged into the global
    /// registry via [`merge_from`](Self::merge_from).
    pub fn drain(&mut self) -> MetricsRegistry {
        let mut out = MetricsRegistry::with_event_capacity(self.events.capacity());
        std::mem::swap(&mut out.counters, &mut self.counters);
        std::mem::swap(&mut out.gauges, &mut self.gauges);
        std::mem::swap(&mut out.histograms, &mut self.histograms);
        std::mem::swap(&mut out.wall, &mut self.wall);
        std::mem::swap(&mut out.profiler, &mut self.profiler);
        std::mem::swap(&mut out.events, &mut self.events);
        out.now = self.now;
        for (k, h) in &out.histograms {
            self.histograms
                .insert(k, Histogram::new(h.edges().to_vec()));
        }
        out
    }

    pub(crate) fn counters_map(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    pub(crate) fn gauges_map(&self) -> &BTreeMap<&'static str, f64> {
        &self.gauges
    }

    pub(crate) fn histograms_map(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.histograms
    }

    pub(crate) fn wall_map(&self) -> &BTreeMap<&'static str, u64> {
        &self.wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = MetricsRegistry::new();
        r.incr("a");
        r.add("a", 4);
        r.gauge_add("g", 0.5);
        r.gauge_add("g", 0.25);
        r.gauge_set("h", 9.0);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), 0.75);
        assert_eq!(r.gauge("h"), 9.0);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        // Below the first edge.
        h.observe(0.0);
        h.observe(0.999);
        // Exactly on an edge goes to the bucket above it (half-open ranges).
        h.observe(1.0);
        h.observe(9.999);
        h.observe(10.0);
        // Overflow bucket.
        h.observe(100.0);
        h.observe(1e9);
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - (0.0 + 0.999 + 1.0 + 9.999 + 10.0 + 100.0 + 1e9)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn observe_uses_default_edges() {
        let mut r = MetricsRegistry::new();
        r.observe("h", 3.0);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.edges(), &DEFAULT_BUCKET_EDGES);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_is_equivalent_to_direct_recording() {
        // Record the same stream once directly and once split across two
        // shard registries merged in order.
        let mut direct = MetricsRegistry::new();
        let mut shard_a = MetricsRegistry::new();
        let mut shard_b = MetricsRegistry::new();
        let record = |r: &mut MetricsRegistry, oid: u64| {
            r.incr("c");
            r.gauge_add("g", 0.5);
            r.observe("h", oid as f64);
            r.wall_add("w", 10);
            r.profiler_add(Phase::Process, 5);
            r.event_at(1.0, EventKind::CellCrossing { oid });
        };
        record(&mut shard_a, 1);
        record(&mut shard_a, 2);
        record(&mut shard_b, 3);
        for oid in [1u64, 2, 3] {
            direct.incr("c");
            direct.gauge_add("g", 0.5);
            direct.observe("h", oid as f64);
            direct.wall_add("w", 10);
            direct.profiler_add(Phase::Process, 5);
            direct.event_at(1.0, EventKind::CellCrossing { oid });
        }
        let mut merged = MetricsRegistry::new();
        merged.merge_from(&shard_a);
        merged.merge_from(&shard_b);
        assert_eq!(merged.counter("c"), direct.counter("c"));
        assert_eq!(merged.gauge("g"), direct.gauge("g"));
        assert_eq!(
            merged.histogram("h").unwrap().counts(),
            direct.histogram("h").unwrap().counts()
        );
        assert_eq!(merged.histogram("h").unwrap().sum(), 3.0 + 2.0 + 1.0);
        assert_eq!(merged.wall("w"), 30);
        assert_eq!(merged.profiler().spans(Phase::Process), 3);
        assert_eq!(merged.events().events(), direct.events().events());
    }

    #[test]
    fn merge_carries_event_overflow() {
        let mut dst = MetricsRegistry::with_event_capacity(1);
        let mut src = MetricsRegistry::with_event_capacity(4);
        for oid in 0..3 {
            src.event_at(1.0, EventKind::CellCrossing { oid });
        }
        dst.merge_from(&src);
        assert_eq!(dst.events().len(), 1);
        assert_eq!(dst.events().dropped(), 2);
    }

    #[test]
    #[should_panic(expected = "identical bucket edges")]
    fn merge_rejects_mismatched_histogram_edges() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.register_histogram("h", vec![1.0, 2.0]);
        b.register_histogram("h", vec![1.0, 3.0]);
        b.observe("h", 1.5);
        a.merge_from(&b);
    }

    #[test]
    fn drain_takes_data_and_keeps_registrations() {
        let mut r = MetricsRegistry::with_event_capacity(8);
        r.register_histogram("h", vec![1.0, 2.0]);
        r.observe("h", 1.5);
        r.incr("c");
        r.set_now(3.0);
        r.event(EventKind::CellCrossing { oid: 7 });
        let taken = r.drain();
        assert_eq!(taken.counter("c"), 1);
        assert_eq!(taken.histogram("h").unwrap().count(), 1);
        assert_eq!(taken.events().len(), 1);
        // The source keeps its shape but no data.
        assert_eq!(r.counter("c"), 0);
        assert!(r.events().is_empty());
        assert_eq!(r.events().capacity(), 8);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.edges(), &[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        // Draining twice in a row yields an empty registry.
        assert_eq!(r.drain().counter("c"), 0);
    }

    #[test]
    fn reset_keeps_registrations() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("h", vec![1.0, 2.0]);
        r.observe("h", 1.5);
        r.incr("c");
        r.wall_add("w", 10);
        r.event_at(1.0, EventKind::CellCrossing { oid: 1 });
        r.reset();
        assert_eq!(r.counter("c"), 0);
        assert_eq!(r.wall("w"), 0);
        assert!(r.events().is_empty());
        let h = r.histogram("h").unwrap();
        assert_eq!(h.edges(), &[1.0, 2.0]);
        assert_eq!(h.count(), 0);
    }
}
