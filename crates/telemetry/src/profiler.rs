//! Per-tick phase profiler.
//!
//! A [`TickProfiler`] accumulates wall-clock nanoseconds per simulation
//! phase. Wall times are inherently nondeterministic, so they live in
//! their own snapshot section and are excluded from protocol-equivalence
//! comparisons (see `MetricsSnapshot::protocol_view`).

/// The phases a simulation tick passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Mobility model advancing object kinematics.
    Mobility,
    /// Object-side motion processing (cell changes, velocity reports).
    Motion,
    /// Server-side mediation (uplink handling, grouping, broadcasts).
    Mediation,
    /// Object-side downlink processing and query evaluation.
    Process,
    /// Result ingestion / truth accounting at the harness.
    Ingest,
}

pub const PHASES: [Phase; 5] = [
    Phase::Mobility,
    Phase::Motion,
    Phase::Mediation,
    Phase::Process,
    Phase::Ingest,
];

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::Motion => "motion",
            Phase::Mediation => "mediation",
            Phase::Process => "process",
            Phase::Ingest => "ingest",
        }
    }

    pub fn from_name(name: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Phase::Mobility => 0,
            Phase::Motion => 1,
            Phase::Mediation => 2,
            Phase::Process => 3,
            Phase::Ingest => 4,
        }
    }
}

/// Accumulated wall time and span counts per phase.
#[derive(Debug, Clone, Default)]
pub struct TickProfiler {
    nanos: [u64; 5],
    spans: [u64; 5],
}

/// One phase's accumulated timing, as exported in snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    pub phase: &'static str,
    pub nanos: u64,
    pub spans: u64,
}

impl TickProfiler {
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.nanos[i] += nanos;
        self.spans[i] += 1;
    }

    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    pub fn spans(&self, phase: Phase) -> u64 {
        self.spans[phase.index()]
    }

    /// Timings for every phase that recorded at least one span.
    pub fn timings(&self) -> Vec<PhaseTiming> {
        PHASES
            .iter()
            .filter(|p| self.spans[p.index()] > 0)
            .map(|&p| PhaseTiming {
                phase: p.name(),
                nanos: self.nanos[p.index()],
                spans: self.spans[p.index()],
            })
            .collect()
    }

    /// Adds another profiler's accumulated nanos and span counts.
    pub fn merge_from(&mut self, other: &TickProfiler) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
            self.spans[i] += other.spans[i];
        }
    }

    pub fn clear(&mut self) {
        self.nanos = [0; 5];
        self.spans = [0; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        let mut p = TickProfiler::default();
        p.add(Phase::Mediation, 100);
        p.add(Phase::Mediation, 50);
        p.add(Phase::Motion, 7);
        assert_eq!(p.nanos(Phase::Mediation), 150);
        assert_eq!(p.spans(Phase::Mediation), 2);
        let timings = p.timings();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].phase, "motion");
        p.clear();
        assert!(p.timings().is_empty());
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in PHASES {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }
}
