//! `mobieyes-telemetry`: the unified instrumentation layer.
//!
//! One [`MetricsRegistry`] holds typed counters, gauges, fixed-bucket
//! histograms, a per-tick phase profiler and a bounded structured event
//! log. Components do not own bespoke stats structs; they record into an
//! injected [`Telemetry`] handle (a cheaply cloneable `Arc<Mutex<_>>`),
//! and the legacy stats types are reconstructed as views over
//! [`MetricsSnapshot`]s.
//!
//! Design constraints, and how they are met:
//!
//! * **Deterministic.** Counter/gauge/histogram updates are commutative,
//!   keys are `&'static str` in `BTreeMap`s, and events carry simulation
//!   time and are canonically sorted at snapshot; the lock-step
//!   simulator and the threaded runtime therefore produce identical
//!   *protocol* snapshots ([`MetricsSnapshot::protocol_eq`]).
//! * **Allocation-light.** Recording a counter is a `BTreeMap` upsert
//!   under a short-lived mutex; events are pushed into a pre-bounded
//!   buffer and counted (not stored) past capacity.
//! * **Wall time is quarantined.** Only profiler spans and named `wall`
//!   timers read the clock, and both live in snapshot sections excluded
//!   from protocol equivalence.

pub mod events;
pub mod json;
pub mod profiler;
pub mod registry;
pub mod snapshot;

pub use events::{Event, EventKind, EventLog, DEFAULT_EVENT_CAPACITY};

/// The `rec.*` telemetry counter keys: partition crash detection and
/// recovery. Recorded into the cluster bus sink (not the shared protocol
/// sink), so protocol snapshots stay comparable across deployments.
pub mod rec_keys {
    pub const CRASH_DETECTIONS: &str = "rec.crash_detections";
    pub const FENCES: &str = "rec.fences";
    pub const CELLS_FAILED_OVER: &str = "rec.cells_failed_over";
    pub const CELLS_READOPTED: &str = "rec.cells_readopted";
    pub const ENVELOPES_REROUTED: &str = "rec.envelopes_rerouted";
    pub const ENVELOPES_DROPPED: &str = "rec.envelopes_dropped";
    pub const QUERIES_REINSTALLED: &str = "rec.queries_reinstalled";
    /// Lost queries re-entered from a dead partition's journal replay
    /// (exact pre-crash state) instead of survivor reconstruction.
    pub const QUERIES_REPLAYED: &str = "rec.queries_replayed";
    pub const RESPAWNS: &str = "rec.respawns";
}

/// The `rebal.*` telemetry counter keys: load-aware partition
/// rebalancing. Recorded into the cluster bus sink, like [`rec_keys`],
/// so protocol snapshots stay comparable across deployments.
pub mod rebal_keys {
    /// Map generations installed by the rebalance fence.
    pub const INSTALLS: &str = "rebal.installs";
    /// Grid cells moved between partitions by installed generations.
    pub const CELLS_MOVED: &str = "rebal.cells_moved";
    /// Due rebalance rounds that did nothing (any reason).
    pub const SKIPPED: &str = "rebal.skipped";
    /// Skips because a partition was dead or awaiting its failover fence.
    pub const SKIPPED_UNFENCED: &str = "rebal.skipped.unfenced";
    /// Skips because the observation window recorded no uplink load.
    pub const SKIPPED_NO_LOAD: &str = "rebal.skipped.no_load";
    /// Skips because the planner reproduced the installed bounds.
    pub const SKIPPED_UNCHANGED: &str = "rebal.skipped.unchanged";
    /// Fences abandoned mid-flight because a peer died; the old map
    /// generation stays installed and failover handles the corpse.
    pub const ABORTS: &str = "rebal.aborts";
}

/// The `store.*` telemetry counter keys of the durable trajectory log
/// (`mobieyes-store`).
pub mod store_keys {
    /// Records appended to the journal.
    pub const APPENDS: &str = "store.appends";
    /// Frame bytes appended (length prefix + CRC + seq + payload).
    pub const BYTES: &str = "store.bytes";
    /// Physical group-flushes of the buffered writer.
    pub const FLUSHES: &str = "store.flushes";
    /// Segment rotations (size-triggered or checkpoint-triggered).
    pub const ROTATIONS: &str = "store.rotations";
    /// Checkpoint records cut.
    pub const CHECKPOINTS: &str = "store.checkpoints";
    /// Whole segments deleted by compaction GC.
    pub const GC_SEGMENTS: &str = "store.gc_segments";
    /// Records replayed into a server at recovery.
    pub const REPLAYED: &str = "store.replayed";
    /// Torn tails truncated away by the reader on open.
    pub const TORN_TAILS: &str = "store.torn_tails";
    /// Torn writes injected by a fault plan (writer self-kills).
    pub const TORN_WRITES: &str = "store.torn_writes";
    /// I/O errors that poisoned a writer.
    pub const WRITE_ERRORS: &str = "store.write_errors";
}
pub use profiler::{Phase, PhaseTiming, TickProfiler, PHASES};
pub use registry::{Histogram, MetricsRegistry, DEFAULT_BUCKET_EDGES};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared handle to a [`MetricsRegistry`]. Cloning is cheap (an `Arc`
/// bump); every component of one deployment records into clones of the
/// same handle. A fresh `Telemetry::new()` is a private sink, which is
/// what components fall back to when nothing is injected.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A handle whose event log holds up to `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Mutex::new(MetricsRegistry::with_event_capacity(capacity))),
        }
    }

    /// Whether two handles record into the same registry.
    pub fn same_sink(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        // A poisoned registry only means a panicking thread held the lock
        // mid-update of plain counters; the data is still usable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn incr(&self, key: &'static str) {
        self.lock().incr(key);
    }

    pub fn add(&self, key: &'static str, n: u64) {
        self.lock().add(key, n);
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.lock().counter(key)
    }

    pub fn gauge_set(&self, key: &'static str, v: f64) {
        self.lock().gauge_set(key, v);
    }

    pub fn gauge_add(&self, key: &'static str, v: f64) {
        self.lock().gauge_add(key, v);
    }

    pub fn gauge(&self, key: &str) -> f64 {
        self.lock().gauge(key)
    }

    pub fn register_histogram(&self, key: &'static str, edges: Vec<f64>) {
        self.lock().register_histogram(key, edges);
    }

    pub fn observe(&self, key: &'static str, v: f64) {
        self.lock().observe(key, v);
    }

    /// Batched observe: records `n` identical observations with one lock
    /// acquisition and one histogram update.
    pub fn observe_n(&self, key: &'static str, v: f64, n: u64) {
        if n > 0 {
            self.lock().observe_n(key, v, n);
        }
    }

    pub fn wall_add(&self, key: &'static str, nanos: u64) {
        self.lock().wall_add(key, nanos);
    }

    pub fn set_now(&self, t: f64) {
        self.lock().set_now(t);
    }

    pub fn event(&self, kind: EventKind) {
        self.lock().event(kind);
    }

    pub fn event_at(&self, time_s: f64, kind: EventKind) {
        self.lock().event_at(time_s, kind);
    }

    /// Opens a wall-time span for `phase`; the elapsed time is added to
    /// the profiler when the returned guard drops.
    pub fn span(&self, phase: Phase) -> Span {
        Span {
            telemetry: self.clone(),
            phase,
            start: Instant::now(),
        }
    }

    /// Runs `f` inside a [`span`](Self::span).
    pub fn timed<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(phase);
        f()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::of(&self.lock())
    }

    /// Clears recorded data; see [`MetricsRegistry::reset`].
    pub fn reset(&self) {
        self.lock().reset();
    }

    /// Takes everything recorded so far out of the sink, leaving histogram
    /// registrations and event capacity in place; see
    /// [`MetricsRegistry::drain`]. Used by parallel drivers to collect a
    /// worker-local accumulator once per phase.
    pub fn drain(&self) -> MetricsRegistry {
        self.lock().drain()
    }

    /// Additively merges a (typically drained) registry into this sink;
    /// see [`MetricsRegistry::merge_from`].
    pub fn merge_registry(&self, other: &MetricsRegistry) {
        self.lock().merge_from(other);
    }

    /// Read access to the registry for anything not covered by the
    /// forwarding methods.
    pub fn with_registry<T>(&self, f: impl FnOnce(&MetricsRegistry) -> T) -> T {
        f(&self.lock())
    }
}

/// Drop guard produced by [`Telemetry::span`].
pub struct Span {
    telemetry: Telemetry,
    phase: Phase,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.telemetry.lock().profiler_add(self.phase, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_registry() {
        let a = Telemetry::new();
        let b = a.clone();
        a.incr("x");
        b.add("x", 2);
        assert_eq!(a.counter("x"), 3);
        assert!(a.same_sink(&b));
        assert!(!a.same_sink(&Telemetry::new()));
    }

    #[test]
    fn span_records_into_profiler() {
        let t = Telemetry::new();
        {
            let _g = t.span(Phase::Process);
        }
        t.timed(Phase::Process, || ());
        let snap = t.snapshot();
        let process = snap.profiler.iter().find(|p| p.phase == "process").unwrap();
        assert_eq!(process.spans, 2);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Telemetry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.incr("hits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.counter("hits"), 4000);
    }
}
