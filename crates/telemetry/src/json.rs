//! Minimal JSON value model with a writer and a recursive-descent parser.
//!
//! The telemetry snapshot format and the bench table artifacts only need
//! objects, arrays, strings and finite numbers, so this stays tiny and
//! dependency-free. Numbers are stored as `f64`; integer values up to
//! 2^53 round-trip exactly, which covers every counter the simulator can
//! realistically produce.

use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object; keys are not deduplicated.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no representation for NaN/inf; null is the least-bad option.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` produces the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a descriptive error on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so it is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::str("fig\"1\"")),
            (
                "rows".into(),
                Value::Arr(vec![Value::Num(1.5), Value::Num(-3.0), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Value::Num(123456789.0).to_string_compact(), "123456789");
        assert_eq!(Value::Num(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
