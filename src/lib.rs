//! # MobiEyes
//!
//! A from-scratch Rust reproduction of *"MobiEyes: Distributed Processing
//! of Continuously Moving Queries on Moving Objects in a Mobile System"*
//! (Gedik & Liu, EDBT 2004): a distributed protocol that maintains the
//! results of *moving queries over moving objects* by pushing containment
//! evaluation onto the moving objects themselves, with the server acting
//! only as a mediator.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`geo`]: geometry, the gridded universe of discourse, monitoring
//!   regions, dead-reckoning motion model.
//! - [`rstar`]: an R*-tree (used by the centralized baselines).
//! - [`net`]: the simulated asymmetric wireless network with base-station
//!   broadcast, message accounting and the GPRS radio energy model.
//! - [`core`]: the MobiEyes protocol — server, moving-object agents,
//!   messages, filters, and the lazy-propagation / grouping / safe-period
//!   optimizations.
//! - [`baselines`]: centralized engines (object index, query index, brute
//!   force oracle).
//! - [`sim`]: Table 1 workload generation, mobility, ground truth and the
//!   measurement drivers behind every figure of the paper.
//! - [`runtime`]: a threaded actor deployment of the same protocol.
//!
//! ## Quickstart
//!
//! ```
//! use mobieyes::core::{Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, Server};
//! use mobieyes::core::server::Net;
//! use mobieyes::geo::{Grid, Point, QueryRegion, Rect, Vec2};
//! use mobieyes::net::BaseStationLayout;
//! use std::sync::Arc;
//!
//! // A 100x100 mile universe gridded into 10-mile cells.
//! let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
//! let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)));
//! let mut net = Net::new(BaseStationLayout::new(universe, 20.0));
//! let mut server = Server::new(Arc::clone(&config));
//!
//! // Two moving objects: a taxi driver (focal) and a customer.
//! let mut driver = MovingObjectAgent::new(
//!     ObjectId(0), Properties::new(), 0.02, Point::new(50.0, 50.0), Vec2::ZERO, Arc::clone(&config));
//! let mut customer = MovingObjectAgent::new(
//!     ObjectId(1), Properties::new().with("looking_for_taxi", true), 0.02,
//!     Point::new(52.0, 50.0), Vec2::ZERO, Arc::clone(&config));
//!
//! // "Customers looking for a taxi within 5 miles of me."
//! let qid = server.install_query(
//!     ObjectId(0),
//!     QueryRegion::circle(5.0),
//!     Filter::Eq("looking_for_taxi".into(), true.into()),
//!     &mut net,
//! );
//!
//! // Run a few protocol rounds: deliver downlinks, tick agents, tick server.
//! for step in 0..3 {
//!     let t = step as f64 * 30.0;
//!     for agent in [&mut driver, &mut customer] {
//!         let mut inbox = Vec::new();
//!         net.deliver(agent.oid().node(), agent.position(), &mut inbox);
//!         let (pos, vel) = (agent.position(), Vec2::ZERO);
//!         agent.tick(t, pos, vel, inbox.iter().map(|m| &**m), &mut net);
//!     }
//!     net.end_tick();
//!     server.tick(&mut net);
//! }
//! assert!(server.query_result(qid).unwrap().contains(&ObjectId(1)));
//! ```

pub use mobieyes_baselines as baselines;
pub use mobieyes_cluster as cluster;
pub use mobieyes_core as core;
pub use mobieyes_geo as geo;
pub use mobieyes_net as net;
pub use mobieyes_rstar as rstar;
pub use mobieyes_runtime as runtime;
pub use mobieyes_sim as sim;
pub use mobieyes_store as store;
pub use mobieyes_telemetry as telemetry;

/// The unified error of the facade: every fallible entry point — wire
/// decoding, configuration validation, transport I/O — converts into this
/// enum, so callers can `?` across layers without juggling three error
/// types.
#[derive(Debug)]
pub enum Error {
    /// A wire frame failed to decode: truncated, oversized or malformed.
    Decode(mobieyes_core::codec::DecodeError),
    /// A simulation configuration failed validation.
    Config(mobieyes_sim::ConfigError),
    /// A transport backend failed to move or frame bytes.
    Transport(mobieyes_net::TransportError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Decode(e) => write!(f, "decode: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Decode(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Transport(e) => Some(e),
        }
    }
}

impl From<mobieyes_core::codec::DecodeError> for Error {
    fn from(e: mobieyes_core::codec::DecodeError) -> Error {
        Error::Decode(e)
    }
}

impl From<mobieyes_sim::ConfigError> for Error {
    fn from(e: mobieyes_sim::ConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<mobieyes_net::TransportError> for Error {
    fn from(e: mobieyes_net::TransportError) -> Error {
        Error::Transport(e)
    }
}

/// The common vocabulary in one import: `use mobieyes::prelude::*;`.
///
/// Re-exports the types almost every program touches — the protocol
/// endpoints ([`Server`], [`MovingObjectAgent`]), the transport layer
/// ([`Transport`], [`SocketTransport`], [`TransportKind`]), geometry
/// primitives, the simulation drivers and their configuration, the
/// unified [`Approach`] entry point, and the telemetry sink every layer
/// records into.
///
/// The simulated-network plumbing (`NetworkSim`, `BaseStationLayout`,
/// `MessageMeter`, `RadioModel`) is no longer part of the prelude: those
/// are internals of the lockstep backend. Deprecated aliases keep old
/// imports compiling; reach them at [`crate::net`] directly.
pub mod prelude {
    pub use crate::Error;
    pub use mobieyes_core::{
        Filter, MovingObjectAgent, ObjectId, PropValue, Propagation, Properties, ProtocolConfig,
        QueryId, Server,
    };
    pub use mobieyes_geo::{CellId, Grid, Point, QueryRegion, Rect, Region, Vec2};
    pub use mobieyes_net::{
        Endpoint, FramedConn, Listener, LockstepTransport, SocketTransport, Transport,
        TransportError,
    };
    pub use mobieyes_runtime::{ThreadedOutcome, ThreadedSim};
    pub use mobieyes_sim::{
        run_approach, run_approach_with, Approach, ClusterClient, ConfigError, EngineKind,
        HostedPartitions, MobiEyesSim, Mobility, RecoveryKind, RunMetrics, RunReport, SimConfig,
        SimConfigBuilder, TransportKind, Workload,
    };
    pub use mobieyes_telemetry::{
        MetricsRegistry, MetricsSnapshot, Phase, Telemetry, TickProfiler,
    };

    /// Deprecated alias kept so pre-0.6 `prelude::Net` imports compile.
    #[deprecated(
        since = "0.6.0",
        note = "`Net` is lockstep-backend plumbing; import `mobieyes::core::server::Net` directly"
    )]
    pub type Net = mobieyes_core::server::Net;

    /// Deprecated alias kept so pre-0.6 `prelude::NetworkSim` imports compile.
    #[deprecated(
        since = "0.6.0",
        note = "`NetworkSim` is lockstep-backend plumbing; import `mobieyes::net::NetworkSim` directly"
    )]
    pub type NetworkSim<U, D> = mobieyes_net::NetworkSim<U, D>;

    /// Deprecated alias kept so pre-0.6 `prelude::BaseStationLayout` imports compile.
    #[deprecated(
        since = "0.6.0",
        note = "`BaseStationLayout` is lockstep-backend plumbing; import `mobieyes::net::BaseStationLayout` directly"
    )]
    pub type BaseStationLayout = mobieyes_net::BaseStationLayout;

    /// Deprecated alias kept so pre-0.6 `prelude::MessageMeter` imports compile.
    #[deprecated(
        since = "0.6.0",
        note = "`MessageMeter` is lockstep-backend plumbing; import `mobieyes::net::MessageMeter` directly"
    )]
    pub type MessageMeter = mobieyes_net::MessageMeter;

    /// Deprecated alias kept so pre-0.6 `prelude::RadioModel` imports compile.
    #[deprecated(
        since = "0.6.0",
        note = "`RadioModel` is lockstep-backend plumbing; import `mobieyes::net::RadioModel` directly"
    )]
    pub type RadioModel = mobieyes_net::RadioModel;
}
