//! # MobiEyes
//!
//! A from-scratch Rust reproduction of *"MobiEyes: Distributed Processing
//! of Continuously Moving Queries on Moving Objects in a Mobile System"*
//! (Gedik & Liu, EDBT 2004): a distributed protocol that maintains the
//! results of *moving queries over moving objects* by pushing containment
//! evaluation onto the moving objects themselves, with the server acting
//! only as a mediator.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`geo`]: geometry, the gridded universe of discourse, monitoring
//!   regions, dead-reckoning motion model.
//! - [`rstar`]: an R*-tree (used by the centralized baselines).
//! - [`net`]: the simulated asymmetric wireless network with base-station
//!   broadcast, message accounting and the GPRS radio energy model.
//! - [`core`]: the MobiEyes protocol — server, moving-object agents,
//!   messages, filters, and the lazy-propagation / grouping / safe-period
//!   optimizations.
//! - [`baselines`]: centralized engines (object index, query index, brute
//!   force oracle).
//! - [`sim`]: Table 1 workload generation, mobility, ground truth and the
//!   measurement drivers behind every figure of the paper.
//! - [`runtime`]: a threaded actor deployment of the same protocol.
//!
//! ## Quickstart
//!
//! ```
//! use mobieyes::core::{Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, Server};
//! use mobieyes::core::server::Net;
//! use mobieyes::geo::{Grid, Point, QueryRegion, Rect, Vec2};
//! use mobieyes::net::BaseStationLayout;
//! use std::sync::Arc;
//!
//! // A 100x100 mile universe gridded into 10-mile cells.
//! let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
//! let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)));
//! let mut net = Net::new(BaseStationLayout::new(universe, 20.0));
//! let mut server = Server::new(Arc::clone(&config));
//!
//! // Two moving objects: a taxi driver (focal) and a customer.
//! let mut driver = MovingObjectAgent::new(
//!     ObjectId(0), Properties::new(), 0.02, Point::new(50.0, 50.0), Vec2::ZERO, Arc::clone(&config));
//! let mut customer = MovingObjectAgent::new(
//!     ObjectId(1), Properties::new().with("looking_for_taxi", true), 0.02,
//!     Point::new(52.0, 50.0), Vec2::ZERO, Arc::clone(&config));
//!
//! // "Customers looking for a taxi within 5 miles of me."
//! let qid = server.install_query(
//!     ObjectId(0),
//!     QueryRegion::circle(5.0),
//!     Filter::Eq("looking_for_taxi".into(), true.into()),
//!     &mut net,
//! );
//!
//! // Run a few protocol rounds: deliver downlinks, tick agents, tick server.
//! for step in 0..3 {
//!     let t = step as f64 * 30.0;
//!     for agent in [&mut driver, &mut customer] {
//!         let mut inbox = Vec::new();
//!         net.deliver(agent.oid().node(), agent.position(), &mut inbox);
//!         let (pos, vel) = (agent.position(), Vec2::ZERO);
//!         agent.tick(t, pos, vel, inbox.iter().map(|m| &**m), &mut net);
//!     }
//!     net.end_tick();
//!     server.tick(&mut net);
//! }
//! assert!(server.query_result(qid).unwrap().contains(&ObjectId(1)));
//! ```

pub use mobieyes_baselines as baselines;
pub use mobieyes_core as core;
pub use mobieyes_geo as geo;
pub use mobieyes_net as net;
pub use mobieyes_rstar as rstar;
pub use mobieyes_runtime as runtime;
pub use mobieyes_sim as sim;
pub use mobieyes_telemetry as telemetry;

/// The common vocabulary in one import: `use mobieyes::prelude::*;`.
///
/// Re-exports the types almost every program touches — the protocol
/// endpoints ([`Server`], [`MovingObjectAgent`]), the simulated network,
/// geometry primitives, the simulation drivers and their configuration,
/// the unified [`Approach`] entry point, and the telemetry sink every
/// layer records into.
pub mod prelude {
    pub use mobieyes_core::server::Net;
    pub use mobieyes_core::{
        Filter, MovingObjectAgent, ObjectId, PropValue, Propagation, Properties, ProtocolConfig,
        QueryId, Server,
    };
    pub use mobieyes_geo::{CellId, Grid, Point, QueryRegion, Rect, Region, Vec2};
    pub use mobieyes_net::{BaseStationLayout, MessageMeter, NetworkSim, RadioModel};
    pub use mobieyes_runtime::{ThreadedOutcome, ThreadedSim};
    pub use mobieyes_sim::{
        run_approach, run_approach_with, Approach, MobiEyesSim, Mobility, RunMetrics, RunReport,
        SimConfig, SimConfigBuilder, Workload,
    };
    pub use mobieyes_telemetry::{
        MetricsRegistry, MetricsSnapshot, Phase, Telemetry, TickProfiler,
    };
}
