//! Multi-process MobiEyes: partition services and a coordinator driver.
//!
//! `mobieyes-serve partition` hosts one grid partition behind the framed
//! RPC protocol on a TCP or Unix-domain endpoint; it prints `READY
//! <endpoint>` (with `port 0` resolved) once listening, then serves one
//! coordinator until `Shutdown`. Exit code 0 means a clean `Shutdown`;
//! exit code 2 means the transport died underneath the service (peer
//! vanished, poisoned listener) — the supervisor treats that as a crash.
//!
//! `mobieyes-serve drive` spawns one partition process per shard, runs
//! the standard simulation workload against them from this process, and
//! cross-checks the final result digest against an in-process lock-step
//! run of the identical configuration — the self-contained smoke test
//! `scripts/check.sh` calls. With `--crash-tick` it additionally plays
//! supervisor: at the scheduled tick it `SIGKILL`s the victim partition
//! processes, lets the coordinator detect the deaths and run the
//! failover fence, and — under `--recovery respawn` — restarts each
//! victim on a fresh endpoint and hands the re-connected socket back to
//! the coordinator for the re-adoption fence (DESIGN.md §13). The
//! lock-step reference runs the *same* crash plan in-process, so the
//! final digests must still match exactly.

use mobieyes::cluster::serve_partition;
use mobieyes::net::{Endpoint, Listener};
use mobieyes::prelude::*;
use std::cell::RefCell;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::time::Duration;

const HELP: &str = "\
mobieyes-serve: run MobiEyes partitions as separate OS processes

USAGE:
    mobieyes-serve partition --partition <N> --listen <endpoint>
    mobieyes-serve drive [options]

ENDPOINTS:
    tcp:host:port    TCP (port 0 = OS-assigned, resolved in READY line)
    uds:/path.sock   Unix-domain socket

PARTITION:
    Hosts one grid partition. Prints `READY <endpoint>` when listening,
    serves exactly one coordinator connection, exits after Shutdown.
    Exits 0 on clean Shutdown, 2 when the transport dies underneath it.

DRIVE OPTIONS:
    --transport <tcp|uds>   socket family for the partition processes [uds]
    --partitions <N>        number of partition processes [2]
    --mode <eqp|lqp>        propagation mode [eqp]
    --objects <N>           moving objects [small-test default]
    --queries <N>           moving queries [small-test default]
    --ticks <N>             measured ticks [50]
    --warmup <N>            warm-up ticks [small-test default]
    --seed <N>              workload seed [7]
    --json <path>           write the outcome as JSON
    --crash-tick <N>        SIGKILL seeded victim partitions at measured
                            tick N (0 = off) [0]
    --kill <N>              partitions to kill at the crash tick [1]
    --recovery <mode>       failover | respawn: keep the victims' cells at
                            the survivors, or restart each victim process
                            and hand its cells back [failover]
    --store-dir <path>      journal every partition to durable logs under
                            <path>/live (the lock-step reference journals
                            under <path>/reference — never shared). Both
                            subtrees are wiped at start. A SIGKILLed
                            partition's queries are then recovered by log
                            replay instead of the agent round trip [off]
    --checkpoint-ticks <N>  checkpoint the durable logs every N ticks
                            (snapshot + segment GC) [0 = off]
    --rebalance-ticks <N>   rebalance the partition map from observed load
                            every N measured ticks; runs the remote fence
                            over the partition sockets (0 = off) [0]
";

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("unparseable value: {s}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let code = match args.next().as_deref() {
        Some("partition") => run_partition(args),
        Some("drive") => run_drive(args),
        Some("-h") | Some("--help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{HELP}")),
    };
    if let Err(e) = code {
        eprintln!("mobieyes-serve: {e}");
        std::process::exit(1);
    }
}

fn run_partition(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut partition: Option<u32> = None;
    let mut listen: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--partition" => partition = Some(parse(&value("--partition")?)?),
            "--listen" => listen = Some(value("--listen")?),
            other => return Err(format!("unknown partition flag {other:?}")),
        }
    }
    let partition = partition.ok_or("--partition is required")?;
    let listen = listen.ok_or("--listen is required")?;
    let endpoint = Endpoint::parse(&listen).map_err(|e| e.to_string())?;
    let listener = Listener::bind(&endpoint).map_err(|e| e.to_string())?;
    let bound = listener.local_endpoint().map_err(|e| e.to_string())?;
    println!("READY {bound}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    // A transport death is not a usage error: exit 2 so a supervisor can
    // tell "the coordinator vanished" apart from "bad arguments".
    if let Err(e) = serve_partition(listener, partition) {
        eprintln!("mobieyes-serve: partition {partition}: {e}");
        std::process::exit(2);
    }
    Ok(())
}

/// Spawns one partition service process and waits for its `READY` line.
/// `incarnation` keeps respawned Unix-socket paths collision-free: the
/// SIGKILLed predecessor never unlinked its socket.
fn spawn_service(
    exe: &std::path::Path,
    transport: TransportKind,
    p: usize,
    incarnation: u64,
) -> Result<(Child, Endpoint), String> {
    let listen = match transport {
        TransportKind::Tcp => "tcp:127.0.0.1:0".to_string(),
        TransportKind::Uds => format!(
            "uds:{}",
            std::env::temp_dir()
                .join(format!(
                    "mobieyes-serve-{}-{p}-{incarnation}.sock",
                    std::process::id()
                ))
                .display()
        ),
        TransportKind::Lockstep => unreachable!("rejected at parse"),
    };
    let mut child = Command::new(exe)
        .args([
            "partition",
            "--partition",
            &p.to_string(),
            "--listen",
            &listen,
        ])
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning partition {p}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .map_err(|e| format!("reading READY from partition {p}: {e}"))?;
    let bound = ready
        .trim()
        .strip_prefix("READY ")
        .ok_or_else(|| format!("partition {p} printed {ready:?}, expected READY"))?;
    let endpoint = Endpoint::parse(bound).map_err(|e| e.to_string())?;
    Ok((child, endpoint))
}

fn run_drive(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut transport = TransportKind::Uds;
    let mut partitions: usize = 2;
    let mut mode = Propagation::Eager;
    let mut ticks: usize = 50;
    let mut seed: u64 = 7;
    let mut objects: Option<usize> = None;
    let mut queries: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut json_out: Option<String> = None;
    let mut crash_tick: usize = 0;
    let mut kills: usize = 1;
    let mut recovery = RecoveryKind::Failover;
    let mut store_dir: Option<String> = None;
    let mut checkpoint_ticks: usize = 0;
    let mut rebalance_ticks: usize = 0;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--transport" => {
                transport =
                    TransportKind::parse(&value("--transport")?).map_err(|e| e.to_string())?;
                if transport == TransportKind::Lockstep {
                    return Err("drive needs a socket transport: tcp or uds".into());
                }
            }
            "--partitions" => partitions = parse(&value("--partitions")?)?,
            "--mode" => {
                mode = match value("--mode")?.as_str() {
                    "eqp" => Propagation::Eager,
                    "lqp" => Propagation::Lazy,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--objects" => objects = Some(parse(&value("--objects")?)?),
            "--queries" => queries = Some(parse(&value("--queries")?)?),
            "--ticks" => ticks = parse(&value("--ticks")?)?,
            "--warmup" => warmup = Some(parse(&value("--warmup")?)?),
            "--seed" => seed = parse(&value("--seed")?)?,
            "--json" => json_out = Some(value("--json")?),
            "--crash-tick" => crash_tick = parse(&value("--crash-tick")?)?,
            "--kill" => kills = parse(&value("--kill")?)?,
            "--recovery" => {
                recovery = RecoveryKind::parse(&value("--recovery")?).map_err(|e| e.to_string())?
            }
            "--store-dir" => store_dir = Some(value("--store-dir")?),
            "--checkpoint-ticks" => checkpoint_ticks = parse(&value("--checkpoint-ticks")?)?,
            "--rebalance-ticks" => rebalance_ticks = parse(&value("--rebalance-ticks")?)?,
            other => return Err(format!("unknown drive flag {other:?}")),
        }
    }
    if partitions == 0 {
        return Err("--partitions must be at least 1".into());
    }
    if crash_tick > 0 {
        if partitions < 2 {
            return Err("--crash-tick needs at least 2 partitions".into());
        }
        if kills == 0 || kills >= partitions {
            return Err(format!(
                "--kill must be between 1 and {} for {partitions} partitions",
                partitions - 1
            ));
        }
        if crash_tick >= ticks {
            return Err(format!(
                "--crash-tick {crash_tick} never fires within --ticks {ticks}"
            ));
        }
    }

    let mut config = SimConfig::small_test(seed)
        .with_propagation(mode)
        .with_partitions(partitions);
    {
        let mut b = SimConfigBuilder::from_config(config).ticks(ticks);
        if let Some(n) = objects {
            b = b.objects(n);
        }
        if let Some(n) = queries {
            b = b.queries(n);
        }
        if let Some(n) = warmup {
            b = b.warmup_ticks(n);
        }
        if crash_tick > 0 {
            b = b
                .partition_crash_ticks(crash_tick)
                .partition_crash_kills(kills)
                .recovery(recovery);
        }
        if checkpoint_ticks > 0 {
            b = b.store_checkpoint_ticks(checkpoint_ticks);
        }
        if rebalance_ticks > 0 {
            b = b.rebalance_ticks(rebalance_ticks);
        }
        config = b.build().map_err(|e| e.to_string())?;
    }

    // Resolve persistence exactly once, here: the live deployment and the
    // lock-step reference run the same configuration in the same process,
    // so they must never share (or inherit via MOBIEYES_STORE_DIR) a log
    // directory — the reference would replay the live run's journal. An
    // empty store path pins persistence off for both when no root is set.
    let store_root = store_dir
        .map(std::path::PathBuf::from)
        .or_else(|| config.resolved_store_dir());
    let (live_store, reference_store) = match &store_root {
        Some(root) => {
            let (live, reference) = (root.join("live"), root.join("reference"));
            for dir in [&live, &reference] {
                if let Err(e) = std::fs::remove_dir_all(dir) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        return Err(format!("wiping {}: {e}", dir.display()));
                    }
                }
            }
            (live, reference)
        }
        None => (std::path::PathBuf::new(), std::path::PathBuf::new()),
    };
    config = config.with_store_dir(live_store);

    // Spawn one partition process per shard and collect their endpoints.
    // The supervisor hooks below take and refill slots, so the children
    // live behind a shared, optional-per-slot vector.
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let children: Rc<RefCell<Vec<Option<Child>>>> = Rc::new(RefCell::new(Vec::new()));
    let mut endpoints: Vec<Endpoint> = Vec::with_capacity(partitions);
    for p in 0..partitions {
        let (child, endpoint) = spawn_service(&exe, transport, p, 0)?;
        endpoints.push(endpoint);
        children.borrow_mut().push(Some(child));
    }

    // Run the workload against the live processes...
    let client =
        ClusterClient::connect(&endpoints, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let mut sim = client.into_sim(config.clone(), Telemetry::new());
    if crash_tick > 0 {
        // Kill hook: SIGKILL the victim and reap it, so its sockets are
        // provably closed before the coordinator's liveness probe runs.
        let kill_slots = Rc::clone(&children);
        sim.set_crash_hook(move |p| {
            if let Some(mut child) = kill_slots.borrow_mut()[p as usize].take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        });
        if recovery == RecoveryKind::Respawn {
            // Respawn hook: restart the victim on a fresh endpoint,
            // redo the hello exchange, and hand the connection back for
            // the re-adoption fence. `None` retries at the next tick.
            let respawn_slots = Rc::clone(&children);
            let respawn_exe = exe.clone();
            let incarnation = RefCell::new(0u64);
            sim.set_respawn_hook(move |p| {
                *incarnation.borrow_mut() += 1;
                let seq = *incarnation.borrow();
                let (child, endpoint) =
                    match spawn_service(&respawn_exe, transport, p as usize, seq) {
                        Ok(ok) => ok,
                        Err(e) => {
                            eprintln!("mobieyes-serve: respawning partition {p}: {e}");
                            return None;
                        }
                    };
                let conn = endpoint
                    .connect_with_retry(Duration::from_secs(10))
                    .map(FramedConn::new)
                    .and_then(|mut conn| {
                        conn.send_hello(0)?;
                        let announced = conn.expect_hello()?;
                        if announced != p {
                            return Err(TransportError::Handshake(format!(
                                "respawned service announced partition {announced}, expected {p}"
                            )));
                        }
                        Ok(conn)
                    });
                match conn {
                    Ok(conn) => {
                        respawn_slots.borrow_mut()[p as usize] = Some(child);
                        Some(conn)
                    }
                    Err(e) => {
                        eprintln!("mobieyes-serve: reconnecting partition {p}: {e}");
                        None
                    }
                }
            });
        }
    }
    let metrics = sim.run();
    let digest = sim.result_digest();
    // Crash-recovery and rebalance counters live on the cluster's private
    // bus sink (kept out of the protocol snapshot the equivalence tests
    // compare).
    let snapshot = sim.cluster().bus_telemetry().snapshot();
    let map_generation = sim.cluster().map_generation();
    sim.shutdown();
    drop(sim);
    // Surviving children (and respawned victims) saw `Shutdown` and must
    // exit cleanly; failover victims were reaped by the kill hook and
    // their slots hold `None`.
    for (p, slot) in children.borrow_mut().iter_mut().enumerate() {
        if let Some(mut child) = slot.take() {
            let status = child
                .wait()
                .map_err(|e| format!("waiting for partition {p}: {e}"))?;
            if !status.success() {
                return Err(format!("partition {p} exited with {status}"));
            }
        }
    }

    // ...and the identical configuration on the in-process lock-step bus:
    // same seed, same crash plan, same recovery mode, so the final
    // digests must agree byte-for-byte even across a mid-run crash.
    let reference_config = config
        .with_transport(TransportKind::Lockstep)
        .with_store_dir(reference_store);
    let mut reference = MobiEyesSim::new(reference_config);
    reference.run();
    let reference_digest = reference.result_digest();

    let matched = digest == reference_digest;
    let crash_detections = snapshot.counter(mobieyes::telemetry::rec_keys::CRASH_DETECTIONS);
    let fences = snapshot.counter(mobieyes::telemetry::rec_keys::FENCES);
    let queries_replayed = snapshot.counter(mobieyes::telemetry::rec_keys::QUERIES_REPLAYED);
    let rebalance_installs = snapshot.counter(mobieyes::telemetry::rebal_keys::INSTALLS);
    let rebalance_skips = snapshot.counter(mobieyes::telemetry::rebal_keys::SKIPPED);
    let rebalance_aborts = snapshot.counter(mobieyes::telemetry::rebal_keys::ABORTS);
    let json = format!(
        concat!(
            "{{\n",
            "  \"transport\": \"{}\",\n",
            "  \"partitions\": {},\n",
            "  \"mode\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"ticks\": {},\n",
            "  \"crash_tick\": {},\n",
            "  \"kills\": {},\n",
            "  \"recovery\": \"{}\",\n",
            "  \"crash_detections\": {},\n",
            "  \"fences\": {},\n",
            "  \"store\": {},\n",
            "  \"queries_replayed\": {},\n",
            "  \"rebalance_ticks\": {},\n",
            "  \"map_generation\": {},\n",
            "  \"rebalance_installs\": {},\n",
            "  \"rebalance_skips\": {},\n",
            "  \"rebalance_aborts\": {},\n",
            "  \"digest\": \"{:016x}\",\n",
            "  \"reference_digest\": \"{:016x}\",\n",
            "  \"digests_match\": {},\n",
            "  \"msgs_per_second\": {},\n",
            "  \"avg_result_error\": {}\n",
            "}}\n"
        ),
        transport,
        partitions,
        if mode == Propagation::Lazy {
            "lqp"
        } else {
            "eqp"
        },
        seed,
        ticks,
        crash_tick,
        if crash_tick > 0 { kills } else { 0 },
        recovery,
        crash_detections,
        fences,
        store_root.is_some(),
        queries_replayed,
        rebalance_ticks,
        map_generation,
        rebalance_installs,
        rebalance_skips,
        rebalance_aborts,
        digest,
        reference_digest,
        matched,
        metrics.msgs_per_second,
        metrics.avg_result_error,
    );
    print!("{json}");
    if let Some(path) = json_out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !matched {
        return Err(format!(
            "result digest diverged: live {digest:016x} vs lock-step {reference_digest:016x}"
        ));
    }
    Ok(())
}
