//! Multi-process MobiEyes: partition services and a coordinator driver.
//!
//! `mobieyes-serve partition` hosts one grid partition behind the framed
//! RPC protocol on a TCP or Unix-domain endpoint; it prints `READY
//! <endpoint>` (with `port 0` resolved) once listening, then serves one
//! coordinator until `Shutdown`.
//!
//! `mobieyes-serve drive` spawns one partition process per shard, runs
//! the standard simulation workload against them from this process, and
//! cross-checks the final result digest against an in-process lock-step
//! run of the identical configuration — the self-contained smoke test
//! `scripts/check.sh` calls.

use mobieyes::cluster::serve_partition;
use mobieyes::net::{Endpoint, Listener};
use mobieyes::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const HELP: &str = "\
mobieyes-serve: run MobiEyes partitions as separate OS processes

USAGE:
    mobieyes-serve partition --partition <N> --listen <endpoint>
    mobieyes-serve drive [options]

ENDPOINTS:
    tcp:host:port    TCP (port 0 = OS-assigned, resolved in READY line)
    uds:/path.sock   Unix-domain socket

PARTITION:
    Hosts one grid partition. Prints `READY <endpoint>` when listening,
    serves exactly one coordinator connection, exits after Shutdown.

DRIVE OPTIONS:
    --transport <tcp|uds>   socket family for the partition processes [uds]
    --partitions <N>        number of partition processes [2]
    --mode <eqp|lqp>        propagation mode [eqp]
    --objects <N>           moving objects [small-test default]
    --queries <N>           moving queries [small-test default]
    --ticks <N>             measured ticks [50]
    --warmup <N>            warm-up ticks [small-test default]
    --seed <N>              workload seed [7]
    --json <path>           write the outcome as JSON
";

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("unparseable value: {s}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let code = match args.next().as_deref() {
        Some("partition") => run_partition(args),
        Some("drive") => run_drive(args),
        Some("-h") | Some("--help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{HELP}")),
    };
    if let Err(e) = code {
        eprintln!("mobieyes-serve: {e}");
        std::process::exit(1);
    }
}

fn run_partition(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut partition: Option<u32> = None;
    let mut listen: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--partition" => partition = Some(parse(&value("--partition")?)?),
            "--listen" => listen = Some(value("--listen")?),
            other => return Err(format!("unknown partition flag {other:?}")),
        }
    }
    let partition = partition.ok_or("--partition is required")?;
    let listen = listen.ok_or("--listen is required")?;
    let endpoint = Endpoint::parse(&listen).map_err(|e| e.to_string())?;
    let listener = Listener::bind(&endpoint).map_err(|e| e.to_string())?;
    let bound = listener.local_endpoint().map_err(|e| e.to_string())?;
    println!("READY {bound}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    serve_partition(listener, partition).map_err(|e| e.to_string())
}

fn run_drive(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut transport = TransportKind::Uds;
    let mut partitions: usize = 2;
    let mut mode = Propagation::Eager;
    let mut ticks: usize = 50;
    let mut seed: u64 = 7;
    let mut objects: Option<usize> = None;
    let mut queries: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut json_out: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--transport" => {
                transport =
                    TransportKind::parse(&value("--transport")?).map_err(|e| e.to_string())?;
                if transport == TransportKind::Lockstep {
                    return Err("drive needs a socket transport: tcp or uds".into());
                }
            }
            "--partitions" => partitions = parse(&value("--partitions")?)?,
            "--mode" => {
                mode = match value("--mode")?.as_str() {
                    "eqp" => Propagation::Eager,
                    "lqp" => Propagation::Lazy,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--objects" => objects = Some(parse(&value("--objects")?)?),
            "--queries" => queries = Some(parse(&value("--queries")?)?),
            "--ticks" => ticks = parse(&value("--ticks")?)?,
            "--warmup" => warmup = Some(parse(&value("--warmup")?)?),
            "--seed" => seed = parse(&value("--seed")?)?,
            "--json" => json_out = Some(value("--json")?),
            other => return Err(format!("unknown drive flag {other:?}")),
        }
    }
    if partitions == 0 {
        return Err("--partitions must be at least 1".into());
    }

    let mut config = SimConfig::small_test(seed)
        .with_propagation(mode)
        .with_partitions(partitions);
    {
        let mut b = SimConfigBuilder::from_config(config).ticks(ticks);
        if let Some(n) = objects {
            b = b.objects(n);
        }
        if let Some(n) = queries {
            b = b.queries(n);
        }
        if let Some(n) = warmup {
            b = b.warmup_ticks(n);
        }
        config = b.build().map_err(|e| e.to_string())?;
    }

    // Spawn one partition process per shard and collect their endpoints.
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children: Vec<Child> = Vec::with_capacity(partitions);
    let mut endpoints: Vec<Endpoint> = Vec::with_capacity(partitions);
    for p in 0..partitions {
        let listen = match transport {
            TransportKind::Tcp => "tcp:127.0.0.1:0".to_string(),
            TransportKind::Uds => format!(
                "uds:{}",
                std::env::temp_dir()
                    .join(format!("mobieyes-serve-{}-{p}.sock", std::process::id()))
                    .display()
            ),
            TransportKind::Lockstep => unreachable!("rejected at parse"),
        };
        let mut child = Command::new(&exe)
            .args([
                "partition",
                "--partition",
                &p.to_string(),
                "--listen",
                &listen,
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning partition {p}: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut ready = String::new();
        BufReader::new(stdout)
            .read_line(&mut ready)
            .map_err(|e| format!("reading READY from partition {p}: {e}"))?;
        let bound = ready
            .trim()
            .strip_prefix("READY ")
            .ok_or_else(|| format!("partition {p} printed {ready:?}, expected READY"))?;
        endpoints.push(Endpoint::parse(bound).map_err(|e| e.to_string())?);
        children.push(child);
    }

    // Run the workload against the live processes...
    let client =
        ClusterClient::connect(&endpoints, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let (metrics, digest) = client.run(config.clone());
    for (p, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .map_err(|e| format!("waiting for partition {p}: {e}"))?;
        if !status.success() {
            return Err(format!("partition {p} exited with {status}"));
        }
    }

    // ...and the identical configuration on the in-process lock-step bus.
    let reference_config = config.with_transport(TransportKind::Lockstep);
    let mut reference = MobiEyesSim::new(reference_config);
    reference.run();
    let reference_digest = reference.result_digest();

    let matched = digest == reference_digest;
    let json = format!(
        concat!(
            "{{\n",
            "  \"transport\": \"{}\",\n",
            "  \"partitions\": {},\n",
            "  \"mode\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"ticks\": {},\n",
            "  \"digest\": \"{:016x}\",\n",
            "  \"reference_digest\": \"{:016x}\",\n",
            "  \"digests_match\": {},\n",
            "  \"msgs_per_second\": {},\n",
            "  \"avg_result_error\": {}\n",
            "}}\n"
        ),
        transport,
        partitions,
        if mode == Propagation::Lazy {
            "lqp"
        } else {
            "eqp"
        },
        seed,
        ticks,
        digest,
        reference_digest,
        matched,
        metrics.msgs_per_second,
        metrics.avg_result_error,
    );
    print!("{json}");
    if let Some(path) = json_out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if !matched {
        return Err(format!(
            "result digest diverged: live {digest:016x} vs lock-step {reference_digest:016x}"
        ));
    }
    Ok(())
}
