//! Command-line simulation driver: run any MobiEyes or baseline scenario
//! with Table 1 defaults and per-flag overrides, printing the full metric
//! set and optionally exporting the raw telemetry snapshot.
//!
//! ```console
//! $ mobieyes --objects 5000 --queries 500 --mode mobieyes-lqp --alpha 4
//! $ mobieyes --mode mobieyes-eqp --grouping --safe-period --ticks 60
//! $ mobieyes --mode naive            # centralized messaging baselines
//! $ mobieyes --mode object-index     # centralized engine baselines
//! $ mobieyes run --metrics-out results/run.json
//! $ mobieyes run --store-dir results/log --checkpoint-ticks 20
//! $ mobieyes trajectory --store-dir results/log --oid 7 --t0 0 --t1 600
//! ```

use mobieyes::prelude::*;

const HELP: &str = "\
mobieyes — distributed moving-query simulation driver

USAGE:
    mobieyes [run] [OPTIONS]
    mobieyes trajectory --store-dir <P> --oid <N> [--t0 <S>] [--t1 <S>]

The `trajectory` subcommand answers a historical query offline: it scans
the durable logs a previous `run --store-dir` left behind (one `p<N>`
directory per partition), merges every motion sample object <N> reported
within simulated seconds [t0, t1], and prints them in time order. The
logs are read cold — no simulation runs and nothing is modified.

OPTIONS:
    --mode <M>         mobieyes-eqp | mobieyes-lqp | naive | central-optimal |
                       object-index | query-index   [default: mobieyes-eqp]
                       (eqp / lqp are accepted as short aliases)
    --objects <N>      number of moving objects          [default: 10000]
    --queries <N>      number of moving queries          [default: 1000]
    --nmo <N>          velocity changes per time step    [default: 1000]
    --alpha <MILES>    grid cell side length             [default: 5]
    --alen <MILES>     base station side length          [default: 10]
    --area <SQMI>      universe area                     [default: 100000]
    --ticks <N>        measured time steps               [default: 40]
    --warmup <N>       warm-up time steps                [default: 5]
    --delta <MILES>    dead-reckoning threshold          [default: 0.2]
    --radius-factor <F> query radius multiplier          [default: 1]
    --focal-pool <N>   draw focal objects from first N objects
    --grouping         enable query grouping
    --safe-period      enable safe-period optimization
    --threads <N>      tick-engine worker threads; 0 = auto from
                       MOBIEYES_THREADS or the host CPU count [default: 0]
    --partitions <N>   grid-sharded server partitions; 0 = auto from
                       MOBIEYES_PARTITIONS, else 1 (single server);
                       results are byte-identical at every count [default: 0]
    --transport <T>    cluster bus backend: lockstep | tcp | uds; unset =
                       auto from MOBIEYES_TRANSPORT, else lockstep. Socket
                       backends pump the same envelopes through a real
                       kernel socket pair        [default: lockstep]
    --engine <E>       tick engine: soa | seed; unset = auto from
                       MOBIEYES_ENGINE, else soa. The struct-of-arrays
                       engine skips provably-inert agents; results are
                       byte-identical either way         [default: soa]
    --rebalance-ticks <N> rebalance the partition map from observed load
                       every N ticks; 0 = auto from
                       MOBIEYES_REBALANCE_TICKS, else off. Never changes
                       results, only the load split        [default: 0]
    --partition-crash-ticks <N> kill seeded victim partitions at measured
                       tick N and recover (DESIGN.md §13); 0 = auto from
                       MOBIEYES_PARTITION_CRASH_TICKS, else off [default: 0]
    --partition-crash-kills <N> partitions to kill at the crash tick;
                       0 = auto from MOBIEYES_PARTITION_CRASH_KILLS,
                       else 1                              [default: 0]
    --recovery <R>     crash recovery mode: failover (survivors keep the
                       dead cells) | respawn (victims restart and re-adopt
                       them); unset = auto from MOBIEYES_RECOVERY, else
                       failover
    --store-dir <P>    journal every state-changing server input to an
                       append-only log under P (one `p<N>` directory per
                       partition); unset = auto from MOBIEYES_STORE_DIR,
                       else off. A restarted server pointed at the same
                       directory replays to byte-identical state
    --checkpoint-ticks <N> checkpoint the durable logs every N ticks
                       (snapshot + segment GC, bounding log size); 0 =
                       auto from MOBIEYES_STORE_CHECKPOINT_TICKS, else
                       off                                  [default: 0]
    --seed <N>         RNG seed
    --uplink-drop <P>  uplink message drop probability (0..=1)   [default: 0]
    --downlink-drop <P> downlink message drop probability (0..=1) [default: 0]
    --dup-rate <P>     message duplication probability (0..=1)   [default: 0]
    --churn-rate <P>   fraction of objects that disconnect (0..=1) [default: 0]
    --lease-ticks <N>  focal-object lease duration in ticks; 0 disables
                       the fault-tolerance layer             [default: 0]
    --metrics-out <P>  write the telemetry snapshot (phase timings,
                       message counters, query lifecycle events) to P;
                       .csv extension selects CSV, anything else JSON
    -h, --help         print this help
";

struct Cli {
    approach: Approach,
    config: SimConfig,
    metrics_out: Option<String>,
}

fn parse_approach(name: &str) -> Result<Approach, String> {
    // Back-compat aliases from the pre-`Approach` CLI.
    match name {
        "eqp" => Ok(Approach::MobiEyesEqp),
        "lqp" => Ok(Approach::MobiEyesLqp),
        other => other.parse(),
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut builder = SimConfig::builder();
    let mut approach = Approach::MobiEyesEqp;
    let mut metrics_out = None;
    let mut args = std::env::args().skip(1).peekable();
    // Accept an optional leading `run` subcommand (`mobieyes run ...`).
    if args.peek().map(String::as_str) == Some("run") {
        args.next();
    }
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--mode" => approach = parse_approach(&value("--mode")?)?,
            "--objects" => builder = builder.objects(parse(&value("--objects")?)?),
            "--queries" => builder = builder.queries(parse(&value("--queries")?)?),
            "--nmo" => {
                builder = builder.objects_changing_velocity(parse(&value("--nmo")?)?);
            }
            "--alpha" => builder = builder.alpha(parse(&value("--alpha")?)?),
            "--alen" => builder = builder.alen(parse(&value("--alen")?)?),
            "--area" => builder = builder.area(parse(&value("--area")?)?),
            "--ticks" => builder = builder.ticks(parse(&value("--ticks")?)?),
            "--warmup" => builder = builder.warmup_ticks(parse(&value("--warmup")?)?),
            "--delta" => builder = builder.delta(parse(&value("--delta")?)?),
            "--radius-factor" => {
                builder = builder.radius_factor(parse(&value("--radius-factor")?)?);
            }
            "--focal-pool" => {
                builder = builder.focal_pool(parse(&value("--focal-pool")?)?);
            }
            "--threads" => builder = builder.threads(parse(&value("--threads")?)?),
            "--partitions" => builder = builder.partitions(parse(&value("--partitions")?)?),
            "--transport" => {
                builder = builder.transport(
                    TransportKind::parse(&value("--transport")?).map_err(|e| e.to_string())?,
                );
            }
            "--engine" => {
                builder = builder
                    .engine(EngineKind::parse(&value("--engine")?).map_err(|e| e.to_string())?);
            }
            "--rebalance-ticks" => {
                builder = builder.rebalance_ticks(parse(&value("--rebalance-ticks")?)?);
            }
            "--partition-crash-ticks" => {
                builder = builder.partition_crash_ticks(parse(&value("--partition-crash-ticks")?)?);
            }
            "--partition-crash-kills" => {
                builder = builder.partition_crash_kills(parse(&value("--partition-crash-kills")?)?);
            }
            "--recovery" => {
                builder = builder.recovery(
                    RecoveryKind::parse(&value("--recovery")?).map_err(|e| e.to_string())?,
                );
            }
            "--store-dir" => builder = builder.store_dir(value("--store-dir")?),
            "--checkpoint-ticks" => {
                builder = builder.store_checkpoint_ticks(parse(&value("--checkpoint-ticks")?)?);
            }
            "--seed" => builder = builder.seed(parse(&value("--seed")?)?),
            "--uplink-drop" => {
                builder = builder.uplink_drop(parse(&value("--uplink-drop")?)?);
            }
            "--downlink-drop" => {
                builder = builder.downlink_drop(parse(&value("--downlink-drop")?)?);
            }
            "--dup-rate" => builder = builder.dup_rate(parse(&value("--dup-rate")?)?),
            "--churn-rate" => builder = builder.churn_rate(parse(&value("--churn-rate")?)?),
            "--lease-ticks" => builder = builder.lease_ticks(parse(&value("--lease-ticks")?)?),
            "--grouping" => builder = builder.grouping(true),
            "--safe-period" => builder = builder.safe_period(true),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Cli {
        approach,
        config: builder.build().map_err(|e| e.to_string())?,
        metrics_out,
    })
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value: {s}"))
}

/// `mobieyes trajectory`: offline historical query over the durable logs
/// of a previous `run --store-dir`, no simulation involved.
fn run_trajectory(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut oid: Option<u32> = None;
    let mut t0 = 0.0f64;
    let mut t1 = f64::INFINITY;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--store-dir" => dir = Some(value("--store-dir")?),
            "--oid" => oid = Some(parse(&value("--oid")?)?),
            "--t0" => t0 = parse(&value("--t0")?)?,
            "--t1" => t1 = parse(&value("--t1")?)?,
            "-h" | "--help" => {
                print!("{HELP}");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let dir = std::path::PathBuf::from(dir.ok_or("trajectory requires --store-dir")?);
    let oid = ObjectId(oid.ok_or("trajectory requires --oid")?);
    // One `p<N>` log directory per partition; a single-server run writes
    // only `p0`. Merge whatever partitions the run left behind.
    let mut motions = Vec::new();
    let mut partitions = 0u32;
    loop {
        let sub = dir.join(format!("p{partitions}"));
        if !sub.is_dir() {
            break;
        }
        let part = mobieyes::store::read_trajectory(&sub, partitions, oid, t0, t1)
            .map_err(|e| format!("reading {}: {e}", sub.display()))?;
        motions.extend(part);
        partitions += 1;
    }
    if partitions == 0 {
        return Err(format!(
            "no partition logs (p0, p1, ...) under {}",
            dir.display()
        ));
    }
    mobieyes::store::sort_dedupe_motions(&mut motions);
    eprintln!(
        "trajectory of object {} over [{t0}, {}] s: {} samples from {partitions} partition log(s)",
        oid.0,
        if t1.is_finite() {
            format!("{t1}")
        } else {
            "inf".to_string()
        },
        motions.len()
    );
    println!("time_s\tpos_x\tpos_y\tvel_x\tvel_y");
    for m in &motions {
        println!(
            "{:.3}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
            m.tm, m.pos.x, m.pos.y, m.vel.x, m.vel.y
        );
    }
    Ok(())
}

fn print_metrics(m: &RunMetrics) {
    println!("label:                        {}", m.label);
    println!("measured ticks:               {}", m.ticks);
    println!("simulated duration:           {:.0} s", m.duration_s);
    println!(
        "server load:                  {:.6} s/tick",
        m.server_seconds_per_tick
    );
    println!("messages/second:              {:.2}", m.msgs_per_second);
    println!(
        "  uplink:                     {:.2}",
        m.uplink_msgs_per_second
    );
    println!(
        "  downlink:                   {:.2}",
        m.downlink_msgs_per_second
    );
    println!(
        "bytes (up/down):              {} / {}",
        m.uplink_bytes, m.downlink_bytes
    );
    println!("avg LQT size:                 {:.3}", m.avg_lqt_size);
    println!(
        "avg evals/object/tick:        {:.3}",
        m.avg_evals_per_object_tick
    );
    println!(
        "avg safe-period skips:        {:.3}",
        m.avg_safe_period_skips
    );
    println!(
        "avg eval time:                {:.3} µs/object/tick",
        m.avg_eval_micros_per_object_tick
    );
    println!("avg result error:             {:.5}", m.avg_result_error);
    println!(
        "avg power:                    {:.3} mW/object",
        m.avg_power_mw
    );
}

fn export_snapshot(path: &str, snapshot: &MetricsSnapshot) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let body = if path.ends_with(".csv") {
        snapshot.to_csv()
    } else {
        snapshot.to_json()
    };
    std::fs::write(path, body)
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("trajectory") {
        if let Err(e) = run_trajectory(std::env::args().skip(2)) {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
        return;
    }
    let cli = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let config = cli.config;
    eprintln!(
        "running {}: {} objects, {} queries, alpha={}, alen={}, {} ticks (+{} warmup)...",
        cli.approach.name(),
        config.num_objects,
        config.num_queries,
        config.alpha,
        config.alen,
        config.ticks,
        config.warmup_ticks
    );
    let start = std::time::Instant::now();
    let report = run_approach(config, cli.approach);
    print_metrics(&report.metrics);
    if let Some(path) = &cli.metrics_out {
        // Exported snapshots include the coordinator's private bus-sink
        // data (rec.* / rebal.* counters, recovery + rebalance events) so
        // skipped or aborted fences are diagnosable from --metrics-out.
        let mut snapshot = report.snapshot.clone();
        if let Some(bus) = &report.bus_snapshot {
            snapshot.absorb(bus);
        }
        match export_snapshot(path, &snapshot) {
            Ok(()) => eprintln!("wrote telemetry snapshot to {path}"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("(wall time {:.1} s)", start.elapsed().as_secs_f64());
}
