//! Command-line simulation driver: run any MobiEyes or baseline scenario
//! with Table 1 defaults and per-flag overrides, printing the full metric
//! set.
//!
//! ```console
//! $ mobieyes --objects 5000 --queries 500 --mode lqp --alpha 4
//! $ mobieyes --mode eqp --grouping --safe-period --ticks 60
//! $ mobieyes --mode naive            # centralized messaging baselines
//! $ mobieyes --mode object-index     # centralized engine baselines
//! ```

use mobieyes::core::Propagation;
use mobieyes::sim::{
    CentralKind, CentralSim, MessagingKind, MessagingModel, MobiEyesSim, RunMetrics, SimConfig,
};

const HELP: &str = "\
mobieyes — distributed moving-query simulation driver

USAGE:
    mobieyes [OPTIONS]

OPTIONS:
    --mode <M>         eqp | lqp | naive | central-optimal | object-index |
                       query-index            [default: eqp]
    --objects <N>      number of moving objects          [default: 10000]
    --queries <N>      number of moving queries          [default: 1000]
    --nmo <N>          velocity changes per time step    [default: 1000]
    --alpha <MILES>    grid cell side length             [default: 5]
    --alen <MILES>     base station side length          [default: 10]
    --area <SQMI>      universe area                     [default: 100000]
    --ticks <N>        measured time steps               [default: 40]
    --warmup <N>       warm-up time steps                [default: 5]
    --delta <MILES>    dead-reckoning threshold          [default: 0.2]
    --radius-factor <F> query radius multiplier          [default: 1]
    --focal-pool <N>   draw focal objects from first N objects
    --grouping         enable query grouping
    --safe-period      enable safe-period optimization
    --seed <N>         RNG seed
    -h, --help         print this help
";

fn parse_args() -> Result<(String, SimConfig), String> {
    let mut config = SimConfig::default();
    let mut mode = "eqp".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--mode" => mode = value("--mode")?,
            "--objects" => config.num_objects = parse(&value("--objects")?)?,
            "--queries" => config.num_queries = parse(&value("--queries")?)?,
            "--nmo" => config.objects_changing_velocity = parse(&value("--nmo")?)?,
            "--alpha" => config.alpha = parse(&value("--alpha")?)?,
            "--alen" => config.alen = parse(&value("--alen")?)?,
            "--area" => config.area = parse(&value("--area")?)?,
            "--ticks" => config.ticks = parse(&value("--ticks")?)?,
            "--warmup" => config.warmup_ticks = parse(&value("--warmup")?)?,
            "--delta" => config.delta = parse(&value("--delta")?)?,
            "--radius-factor" => config.radius_factor = parse(&value("--radius-factor")?)?,
            "--focal-pool" => config.focal_pool = Some(parse(&value("--focal-pool")?)?),
            "--seed" => config.seed = parse(&value("--seed")?)?,
            "--grouping" => config.grouping = true,
            "--safe-period" => config.safe_period = true,
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok((mode, config))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value: {s}"))
}

fn print_metrics(m: &RunMetrics) {
    println!("label:                        {}", m.label);
    println!("measured ticks:               {}", m.ticks);
    println!("simulated duration:           {:.0} s", m.duration_s);
    println!("server load:                  {:.6} s/tick", m.server_seconds_per_tick);
    println!("messages/second:              {:.2}", m.msgs_per_second);
    println!("  uplink:                     {:.2}", m.uplink_msgs_per_second);
    println!("  downlink:                   {:.2}", m.downlink_msgs_per_second);
    println!("bytes (up/down):              {} / {}", m.uplink_bytes, m.downlink_bytes);
    println!("avg LQT size:                 {:.3}", m.avg_lqt_size);
    println!("avg evals/object/tick:        {:.3}", m.avg_evals_per_object_tick);
    println!("avg safe-period skips:        {:.3}", m.avg_safe_period_skips);
    println!("avg eval time:                {:.3} µs/object/tick", m.avg_eval_micros_per_object_tick);
    println!("avg result error:             {:.5}", m.avg_result_error);
    println!("avg power:                    {:.3} mW/object", m.avg_power_mw);
}

fn main() {
    let (mode, mut config) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "running {mode}: {} objects, {} queries, alpha={}, alen={}, {} ticks (+{} warmup)...",
        config.num_objects, config.num_queries, config.alpha, config.alen, config.ticks, config.warmup_ticks
    );
    let start = std::time::Instant::now();
    let metrics = match mode.as_str() {
        "eqp" => {
            config.propagation = Propagation::Eager;
            MobiEyesSim::new(config).run()
        }
        "lqp" => {
            config.propagation = Propagation::Lazy;
            MobiEyesSim::new(config).run()
        }
        "naive" => MessagingModel::new(config, MessagingKind::Naive).run(),
        "central-optimal" => MessagingModel::new(config, MessagingKind::CentralOptimal).run(),
        "object-index" => CentralSim::new(config, CentralKind::ObjectIndex).run(),
        "query-index" => CentralSim::new(config, CentralKind::QueryIndex).run(),
        other => {
            eprintln!("error: unknown mode {other}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    print_metrics(&metrics);
    eprintln!("(wall time {:.1} s)", start.elapsed().as_secs_f64());
}
