#!/usr/bin/env bash
# In-tree benchmark harnesses:
#  - crates/bench/src/bin/parallel.rs: sequential-vs-parallel tick engine
#    (the sequential engine is the 1-thread point) -> BENCH_parallel.json
#  - crates/bench/src/bin/chaos.rs: chaos-recovery latency percentiles
#    under faults + churn -> BENCH_chaos.json
#  - crates/bench/src/bin/cluster.rs: grid-sharded server-tier scaling
#    (per-partition load + bus traffic over 1..8 partitions)
#    -> BENCH_cluster.json
#  - crates/bench/src/bin/scale.rs: struct-of-arrays hot-path sweep from
#    2k to 1M objects at constant density, plus the seed-engine
#    head-to-head at 100k -> BENCH_scale.json
#  - crates/bench/src/bin/recovery.rs: partition-crash recovery latency
#    percentiles under failover and supervised respawn (one of 2, one of
#    4, two of 8 partitions killed) -> BENCH_recovery.json
#  - crates/bench/src/bin/persist.rs: durable-log write-path overhead,
#    append throughput, cold-start replay rate (digest-checked) and
#    checkpoint compaction cost -> BENCH_persist.json
# All JSON files land at the repository root. Every file records host
# provenance — the machine's core count, the MOBIEYES_THREADS setting and
# the cluster-bus transport (MOBIEYES_TRANSPORT, default lockstep) in
# effect — so numbers from different machines and bus backends stay
# attributable.
#
# Run from the repository root: ./scripts/bench.sh
# Set MOBIEYES_QUICK=1 for a ~10x smaller smoke run.
# Set MOBIEYES_TRANSPORT=tcp|uds to pump the cluster bus through a real
# kernel socket pair instead of the in-memory lock-step queue.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "host: $(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo '?') cores," \
     "MOBIEYES_THREADS=${MOBIEYES_THREADS:-auto}," \
     "MOBIEYES_TRANSPORT=${MOBIEYES_TRANSPORT:-lockstep}"

cargo run --release -p mobieyes-bench --bin parallel
cargo run --release -p mobieyes-bench --bin chaos
cargo run --release -p mobieyes-bench --bin cluster
cargo run --release -p mobieyes-bench --bin scale
cargo run --release -p mobieyes-bench --bin recovery
cargo run --release -p mobieyes-bench --bin persist
