#!/usr/bin/env bash
# In-tree benchmark harnesses:
#  - crates/bench/src/bin/parallel.rs: sequential-vs-parallel tick engine
#    (the sequential engine is the 1-thread point) -> BENCH_parallel.json
#  - crates/bench/src/bin/chaos.rs: chaos-recovery latency percentiles
#    under faults + churn -> BENCH_chaos.json
# Both JSON files land at the repository root.
#
# Run from the repository root: ./scripts/bench.sh
# Set MOBIEYES_QUICK=1 for a ~10x smaller smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p mobieyes-bench --bin parallel
cargo run --release -p mobieyes-bench --bin chaos
