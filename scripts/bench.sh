#!/usr/bin/env bash
# Sequential-vs-parallel tick-engine benchmark: runs the in-tree harness
# (crates/bench/src/bin/parallel.rs) over both engines — the sequential
# engine is the 1-thread point, the parallel engine the 2- and 4-thread
# points — and writes BENCH_parallel.json at the repository root.
#
# Run from the repository root: ./scripts/bench.sh
# Set MOBIEYES_QUICK=1 for a ~10x smaller smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p mobieyes-bench --bin parallel
