#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=1)"
MOBIEYES_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=4)"
MOBIEYES_THREADS=4 cargo test -q --workspace

echo "All checks passed."
