#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=1)"
MOBIEYES_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=4)"
MOBIEYES_THREADS=4 cargo test -q --workspace

echo "==> chaos smoke (seq/parallel equivalence + convergence)"
# The chaos-recovery bench is fully deterministic; the same scenario must
# produce byte-identical results and telemetry at 1 and 4 worker threads,
# and every seed must converge back to exact ground truth (the bench caps
# recovery at the documented contract bound, so a non-converging seed
# shows up as recovery_ticks == contract_bound_ticks).
chaos_out_1=$(mktemp) && chaos_out_4=$(mktemp)
trap 'rm -f "$chaos_out_1" "$chaos_out_4"' EXIT
MOBIEYES_QUICK=1 MOBIEYES_THREADS=1 cargo run -q --release -p mobieyes-bench --bin chaos
mv BENCH_chaos.json "$chaos_out_1"
MOBIEYES_QUICK=1 MOBIEYES_THREADS=4 cargo run -q --release -p mobieyes-bench --bin chaos
mv BENCH_chaos.json "$chaos_out_4"
diff "$chaos_out_1" "$chaos_out_4" \
  || { echo "chaos smoke: thread counts disagree"; exit 1; }
bound=$(grep -o '"contract_bound_ticks": [0-9]*' "$chaos_out_1" | grep -o '[0-9]*')
if grep -q "\"recovery_ticks\": $bound[,}]" "$chaos_out_1"; then
  echo "chaos smoke: a seed failed to converge within $bound ticks"; exit 1
fi

echo "All checks passed."
