#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=1)"
MOBIEYES_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q (MOBIEYES_THREADS=4)"
MOBIEYES_THREADS=4 cargo test -q --workspace

# JSON field assertions go through the assert-json helper instead of
# fragile grep -o pipelines.
assert_json() { cargo run -q --release -p mobieyes-bench --bin assert-json -- "$@"; }
# The BENCH_*.json files embed host provenance (host_cores,
# mobieyes_threads) that legitimately differs between the 1- and 4-thread
# runs; everything else must be byte-identical.
diff_benches() {
  diff <(grep -v '"host_cores"' "$1") <(grep -v '"host_cores"' "$2")
}

echo "==> chaos smoke (seq/parallel equivalence + convergence)"
# The chaos-recovery bench is fully deterministic; the same scenario must
# produce byte-identical results and telemetry at 1 and 4 worker threads,
# and every seed must converge back to exact ground truth (the bench caps
# recovery at the documented contract bound, so a non-converging seed
# shows up as recovery_ticks == contract_bound_ticks).
chaos_out_1=$(mktemp) && chaos_out_4=$(mktemp)
cluster_out_1=$(mktemp) && cluster_out_4=$(mktemp)
trap 'rm -f "$chaos_out_1" "$chaos_out_4" "$cluster_out_1" "$cluster_out_4"' EXIT
MOBIEYES_QUICK=1 MOBIEYES_THREADS=1 cargo run -q --release -p mobieyes-bench --bin chaos
mv BENCH_chaos.json "$chaos_out_1"
MOBIEYES_QUICK=1 MOBIEYES_THREADS=4 cargo run -q --release -p mobieyes-bench --bin chaos
mv BENCH_chaos.json "$chaos_out_4"
diff_benches "$chaos_out_1" "$chaos_out_4" \
  || { echo "chaos smoke: thread counts disagree"; exit 1; }
bound=$(assert_json "$chaos_out_1" get contract_bound_ticks)
assert_json "$chaos_out_1" forbid recovery_ticks "$bound" \
  || { echo "chaos smoke: a seed failed to converge within $bound ticks"; exit 1; }

echo "==> cluster smoke (partitioned-tier equivalence)"
# The cluster-scaling bench runs the same deployment over 1, 2, 4 and 8
# partitions and asserts internally that results and protocol telemetry
# are byte-identical to the single server. Running it at 1 and 4 worker
# threads and diffing the JSON additionally proves the partitioned tier is
# thread-count independent.
MOBIEYES_QUICK=1 MOBIEYES_THREADS=1 cargo run -q --release -p mobieyes-bench --bin cluster
mv BENCH_cluster.json "$cluster_out_1"
MOBIEYES_QUICK=1 MOBIEYES_THREADS=4 cargo run -q --release -p mobieyes-bench --bin cluster
mv BENCH_cluster.json "$cluster_out_4"
diff_benches "$cluster_out_1" "$cluster_out_4" \
  || { echo "cluster smoke: thread counts disagree"; exit 1; }
assert_json "$cluster_out_1" require bench cluster-scaling

echo "==> rebalance smoke (load-driven partition-map rebalancing)"
# The cluster bench's rebalance section re-runs the widest deployment with
# the partition map periodically recomputed from observed load, asserting
# internally that results and protocol telemetry still match the single
# server byte for byte. Here we additionally check the headline effect —
# the post-rebalance uplink skew must come in below the static-map skew —
# and drive the CLI path end to end with the new flag (a cadence short
# enough to fire several times in an 8-tick run).
skew_before=$(assert_json "$cluster_out_1" get skew_before)
skew_after=$(assert_json "$cluster_out_1" get skew_after)
awk -v a="$skew_after" -v b="$skew_before" 'BEGIN { exit !(a < b) }' \
  || { echo "rebalance smoke: skew did not improve ($skew_before -> $skew_after)"; exit 1; }
cargo run -q --release --bin mobieyes -- --partitions 4 --rebalance-ticks 3 \
  --objects 400 --queries 40 --nmo 40 --ticks 8 --warmup 2 --area 10000 >/dev/null

echo "==> remote rebalance smoke (rebalance fence over real sockets)"
# Four partition processes behind Unix-domain sockets with the partition
# map recomputed from observed load every 5 ticks: the quiesce / install /
# RQI-transfer fence rides the framed RPC surface instead of the in-process
# bus. `drive` exits non-zero unless the final digest matches the lock-step
# reference; on top of that at least one load-driven generation must have
# installed over the sockets and no fence may have aborted.
rebal_drive=$(mktemp)
cargo run -q --release --bin mobieyes-serve -- drive --transport uds \
  --partitions 4 --ticks 30 --seed 7 --rebalance-ticks 5 \
  --json "$rebal_drive" >/dev/null
assert_json "$rebal_drive" require digests_match true \
  || { echo "remote rebalance smoke: live digest diverged from lock-step"; exit 1; }
rebal_gen=$(assert_json "$rebal_drive" get map_generation)
awk -v g="$rebal_gen" 'BEGIN { exit !(g >= 1) }' \
  || { echo "remote rebalance smoke: no partition-map generation installed"; exit 1; }
assert_json "$rebal_drive" require rebalance_aborts 0 \
  || { echo "remote rebalance smoke: a rebalance fence aborted"; exit 1; }
rm -f "$rebal_drive"
# The cluster bench's rebalance_remote block measures the same fence over
# sockets; every skew_after in the file (in-process and remote) must beat
# every skew_before — the remote fence flattens load exactly like the
# in-process one.
assert_json "$cluster_out_1" require transport uds \
  || { echo "remote rebalance smoke: BENCH_cluster.json lacks the rebalance_remote block"; exit 1; }
r_after=$(assert_json "$cluster_out_1" max skew_after)
r_before=$(assert_json "$cluster_out_1" min skew_before)
awk -v a="$r_after" -v b="$r_before" 'BEGIN { exit !(a < b) }' \
  || { echo "remote rebalance smoke: socket skew did not improve ($r_before -> $r_after)"; exit 1; }

echo "==> scale smoke (struct-of-arrays hot path at 20k objects)"
# The quick scale sweep runs the SoA engine up to 20 000 objects plus the
# seed head-to-head at the ceiling (engine equivalence is pinned byte for
# byte by tests/engine_equivalence.rs; this stage guards the wall clock).
# The budget is ~10x the measured steady state on a slow host — it only
# catches order-of-magnitude regressions, never timing noise.
scale_out=$(mktemp)
MOBIEYES_QUICK=1 cargo run -q --release -p mobieyes-bench --bin scale >/dev/null
mv BENCH_scale.json "$scale_out"
assert_json "$scale_out" require bench scale-sweep
scale_spt=$(assert_json "$scale_out" max seconds_per_tick)
awk -v spt="$scale_spt" 'BEGIN { exit !(spt < 0.25) }' \
  || { echo "scale smoke: ${scale_spt}s/tick blows the 0.25s budget"; exit 1; }
rm -f "$scale_out"

echo "==> recovery smoke (partition crash failover + supervised respawn)"
# The crash-recovery bench kills seeded partitions mid-run and measures
# frozen-mobility ticks back to exact ground truth; like the chaos bench
# it is deterministic across thread counts, and a non-converging scenario
# surfaces as recovery_ticks == contract_bound_ticks.
recovery_out_1=$(mktemp) && recovery_out_4=$(mktemp)
MOBIEYES_QUICK=1 MOBIEYES_THREADS=1 cargo run -q --release -p mobieyes-bench --bin recovery
mv BENCH_recovery.json "$recovery_out_1"
MOBIEYES_QUICK=1 MOBIEYES_THREADS=4 cargo run -q --release -p mobieyes-bench --bin recovery
mv BENCH_recovery.json "$recovery_out_4"
diff_benches "$recovery_out_1" "$recovery_out_4" \
  || { echo "recovery smoke: thread counts disagree"; exit 1; }
rec_bound=$(assert_json "$recovery_out_1" get contract_bound_ticks)
assert_json "$recovery_out_1" forbid recovery_ticks "$rec_bound" \
  || { echo "recovery smoke: a scenario failed to converge within $rec_bound ticks"; exit 1; }
rm -f "$recovery_out_1" "$recovery_out_4"
# Supervised kill -9 across a real process boundary: the coordinator
# SIGKILLs one of four UDS partition processes mid-run, fences it, and —
# in respawn mode — restarts the child and re-adopts its cells. `drive`
# exits non-zero unless the final digest matches the in-process lock-step
# reference playing the identical crash plan.
recovery_drive=$(mktemp)
for rec in failover respawn; do
  cargo run -q --release --bin mobieyes-serve -- drive --transport uds \
    --partitions 4 --ticks 40 --seed 7 --crash-tick 8 --kill 1 \
    --recovery "$rec" --json "$recovery_drive" >/dev/null
  assert_json "$recovery_drive" require digests_match true \
    || { echo "recovery smoke ($rec): live digest diverged from lock-step"; exit 1; }
  assert_json "$recovery_drive" require crash_detections 1 \
    || { echo "recovery smoke ($rec): the kill was never detected"; exit 1; }
done
rm -f "$recovery_drive"

echo "==> persistence smoke (durable log replay + store-backed failover)"
# The persistence bench rebuilds a server purely from its journal and
# demands a byte-identical state digest; the replay-rate floor guards the
# cold-start path against order-of-magnitude regressions only.
persist_out=$(mktemp)
MOBIEYES_QUICK=1 cargo run -q --release -p mobieyes-bench --bin persist >/dev/null
mv BENCH_persist.json "$persist_out"
assert_json "$persist_out" require bench persistence
assert_json "$persist_out" forbid digest_match false \
  || { echo "persist smoke: a replayed server diverged from the one that wrote its log"; exit 1; }
replay_rate=$(assert_json "$persist_out" min replay_records_per_s)
awk -v r="$replay_rate" 'BEGIN { exit !(r >= 100000) }' \
  || { echo "persist smoke: replay rate ${replay_rate} rec/s under the 100k floor"; exit 1; }
rm -f "$persist_out"
# Store-backed kill -9 across a real process boundary: the dead
# partition's queries must come back via log replay (the fast path, no
# agent round trip) and the final digest must still match lock-step.
persist_drive=$(mktemp) && persist_store=$(mktemp -d)
cargo run -q --release --bin mobieyes-serve -- drive --transport uds \
  --partitions 4 --ticks 40 --seed 7 --crash-tick 8 --kill 1 \
  --recovery failover --store-dir "$persist_store" --json "$persist_drive" >/dev/null
assert_json "$persist_drive" require digests_match true \
  || { echo "persist smoke: store-backed drive digest diverged from lock-step"; exit 1; }
replayed=$(assert_json "$persist_drive" get queries_replayed)
awk -v n="$replayed" 'BEGIN { exit !(n >= 1) }' \
  || { echo "persist smoke: no query was recovered via log replay"; exit 1; }
rm -rf "$persist_drive" "$persist_store"
# Historical trajectories through the CLI: journal a short run, then
# query an object's motion history back out of the cold log.
traj_store=$(mktemp -d)
cargo run -q --release --bin mobieyes -- --objects 300 --queries 30 --nmo 30 \
  --ticks 10 --warmup 2 --area 10000 --store-dir "$traj_store" >/dev/null
traj_samples=0
for oid in 0 1 2 3 4 5 6 7 8 9; do
  n=$(cargo run -q --release --bin mobieyes -- trajectory --store-dir "$traj_store" \
    --oid "$oid" --t0 0 --t1 1e18 2>/dev/null | tail -n +2 | wc -l)
  traj_samples=$((traj_samples + n))
done
[ "$traj_samples" -ge 1 ] \
  || { echo "persist smoke: trajectory queries returned no motion samples"; exit 1; }
rm -rf "$traj_store"

echo "==> socket smoke (multi-process partitions over UDS)"
# Two partition services in separate OS processes behind Unix-domain
# sockets, driven for 50 ticks by the coordinator; the final result digest
# must match an in-process lock-step run of the identical configuration.
# `drive` already exits non-zero on divergence; the JSON assertion keeps
# the contract visible in this gate. The in-process socket bus rides the
# same code path through the CLI flag below.
socket_out=$(mktemp)
cargo run -q --release --bin mobieyes-serve -- drive --transport uds \
  --partitions 2 --ticks 50 --seed 7 --json "$socket_out" >/dev/null
assert_json "$socket_out" require digests_match true \
  || { echo "socket smoke: live digest diverged from lock-step"; exit 1; }
rm -f "$socket_out"
cargo run -q --release --bin mobieyes -- --partitions 2 --transport uds \
  --objects 400 --queries 40 --nmo 40 --ticks 8 --warmup 2 --area 10000 >/dev/null

echo "All checks passed."
