//! Struct-of-arrays vs seed tick-engine equivalence.
//!
//! The fast engine's contract (DESIGN.md §12): on every configuration it
//! accepts, a run under `EngineKind::Soa` is byte-identical to the seed
//! reference engine — same query results, same protocol counters,
//! histograms and events, same per-node traffic (and therefore power).
//! Only wall-clock sections (`agent.eval_nanos`, phase timers) may
//! differ, because skipping provably-inert agents is the whole point.
//! These tests pin that contract at ~2k objects across seeds, both
//! propagation modes, the grouping + safe-period optimizations, lease
//! heartbeats, and 1 vs 4 worker threads — plus the churn fallback that
//! invalidates and lazily rebuilds the mirror mid-run.

use mobieyes::prelude::*;
use std::collections::BTreeSet;

struct Run {
    metrics: RunMetrics,
    snapshot: MetricsSnapshot,
    results: Vec<BTreeSet<ObjectId>>,
}

/// A ~2k-object workload: big enough that the fast path's skip logic
/// carries real traffic, small enough to run the full matrix quickly.
fn config_2k(seed: u64) -> SimConfig {
    SimConfig::small_test(seed)
        .with_objects(2_000)
        .with_queries(200)
        .with_nmo(200)
}

fn run_engine(config: SimConfig, engine: EngineKind, threads: usize) -> Run {
    let mut sim = MobiEyesSim::new(config.with_engine(engine).with_threads(threads));
    assert_eq!(sim.engine(), engine);
    let metrics = sim.run();
    let snapshot = sim.telemetry().snapshot();
    let results = sim
        .query_ids()
        .iter()
        .map(|&q| sim.query_result(q).cloned().unwrap_or_default())
        .collect();
    Run {
        metrics,
        snapshot,
        results,
    }
}

/// Asserts every deterministic (non-wall-clock) field of the run matches.
fn assert_equivalent(seed_run: &Run, soa: &Run, label: &str) {
    assert_eq!(
        seed_run.results, soa.results,
        "{label}: query results diverged"
    );
    assert!(
        seed_run.snapshot.protocol_eq(&soa.snapshot),
        "{label}: protocol metrics (counters/histograms/events) diverged"
    );
    let (a, b) = (&seed_run.metrics, &soa.metrics);
    assert_eq!(a.msgs_per_second, b.msgs_per_second, "{label}: msgs/s");
    assert_eq!(
        a.uplink_msgs_per_second, b.uplink_msgs_per_second,
        "{label}: uplink msgs/s"
    );
    assert_eq!(
        a.downlink_msgs_per_second, b.downlink_msgs_per_second,
        "{label}: downlink msgs/s"
    );
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{label}: uplink bytes");
    assert_eq!(
        a.downlink_bytes, b.downlink_bytes,
        "{label}: downlink bytes"
    );
    assert_eq!(a.avg_lqt_size, b.avg_lqt_size, "{label}: LQT size");
    assert_eq!(
        a.avg_evals_per_object_tick, b.avg_evals_per_object_tick,
        "{label}: evals/object/tick"
    );
    assert_eq!(
        a.avg_safe_period_skips, b.avg_safe_period_skips,
        "{label}: safe-period skips"
    );
    assert_eq!(
        a.avg_result_error, b.avg_result_error,
        "{label}: result error"
    );
    assert_eq!(a.avg_power_mw, b.avg_power_mw, "{label}: power");
}

fn assert_matrix(make: impl Fn(u64) -> SimConfig, seeds: &[u64], label: &str) {
    for &seed in seeds {
        let reference = run_engine(make(seed), EngineKind::Seed, 1);
        for threads in [1, 4] {
            let soa = run_engine(make(seed), EngineKind::Soa, threads);
            assert_equivalent(
                &reference,
                &soa,
                &format!("{label} seed={seed} threads={threads}"),
            );
        }
    }
}

#[test]
fn soa_matches_seed_eqp() {
    assert_matrix(config_2k, &[81, 82], "EQP");
}

#[test]
fn soa_matches_seed_lqp() {
    assert_matrix(
        |s| config_2k(s).with_propagation(Propagation::Lazy),
        &[81, 82],
        "LQP",
    );
}

#[test]
fn soa_matches_seed_with_grouping_and_safe_period() {
    // Safe periods are where the whole-agent skip actually bites; the
    // skipped agents' counter and histogram footprint must be restored
    // exactly.
    assert_matrix(
        |s| {
            config_2k(s)
                .with_propagation(Propagation::Lazy)
                .with_grouping(true)
                .with_safe_period(true)
        },
        &[83],
        "LQP+group+safe",
    );
}

#[test]
fn soa_matches_seed_under_lease_heartbeats() {
    // Heartbeat broadcasts reach every agent, turning "cold" ticks into
    // full-delivery ticks; the indexed broadcast delivery must agree with
    // the seed engine message-for-message.
    assert_matrix(|s| config_2k(s).with_lease_ticks(4), &[84], "EQP+leases");
}

#[test]
fn soa_falls_back_under_churn_and_rebuilds_after() {
    // Churn forces the seed phases (stateful fault RNG, offline radios);
    // clearing it mid-run flips back to the fast path, which must rebuild
    // its mirror from agent heap state without diverging.
    let run = |engine: EngineKind| {
        let mut sim = MobiEyesSim::new(config_2k(85).with_engine(engine).with_threads(4));
        sim.set_churn(mobieyes::net::ChurnPlan::new(
            0.05, 0.02, 0.05, 0.02, 0.05, 40, 7,
        ));
        for _ in 0..6 {
            sim.step(false);
        }
        sim.clear_faults();
        for _ in 0..10 {
            sim.step(false);
        }
        (sim.result_digest(), sim.telemetry().snapshot())
    };
    let (seed_digest, seed_snap) = run(EngineKind::Seed);
    let (soa_digest, soa_snap) = run(EngineKind::Soa);
    assert_eq!(seed_digest, soa_digest, "results diverged across churn");
    assert!(
        seed_snap.protocol_eq(&soa_snap),
        "protocol metrics diverged across the churn fallback / rebuild"
    );
}
