//! Adaptive kNN moving queries end to end: the distributed candidate set
//! must converge to a superset of the true k nearest neighbors, and the
//! ranked answer must match a centralized kNN oracle over the same
//! positions.

use mobieyes::core::server::Net;
use mobieyes::core::{
    Filter, KnnConfig, KnnCoordinator, MovingObjectAgent, ObjectId, Properties, ProtocolConfig,
    Server,
};
use mobieyes::geo::{Grid, Point, Rect, Vec2};
use mobieyes::net::BaseStationLayout;
use mobieyes::sim::Rng;
use std::sync::Arc;

const SIDE: f64 = 100.0;
const TS: f64 = 30.0;

struct World {
    server: Server,
    net: Net,
    knn: KnnCoordinator,
    agents: Vec<MovingObjectAgent>,
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
    tick: usize,
}

fn world(n: usize, seed: u64) -> World {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)));
    let net = Net::new(BaseStationLayout::new(universe, 25.0));
    let server = Server::new(Arc::clone(&config));
    let mut rng = Rng::new(seed);
    let mut positions = Vec::new();
    let mut velocities = Vec::new();
    let agents = (0..n)
        .map(|i| {
            let p = Point::new(rng.range(0.0, SIDE), rng.range(0.0, SIDE));
            let v = Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU)) * rng.range(0.0, 0.01);
            positions.push(p);
            velocities.push(v);
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.01,
                p,
                v,
                Arc::clone(&config),
            )
        })
        .collect();
    World {
        server,
        net,
        knn: KnnCoordinator::new(KnnConfig::default()),
        agents,
        positions,
        velocities,
        tick: 0,
    }
}

impl World {
    fn step(&mut self) {
        self.tick += 1;
        let t = self.tick as f64 * TS;
        for i in 0..self.positions.len() {
            let mut p = self.positions[i] + self.velocities[i] * TS;
            if p.x < 0.0 || p.x > SIDE {
                self.velocities[i].x = -self.velocities[i].x;
                p.x = p.x.clamp(0.0, SIDE);
            }
            if p.y < 0.0 || p.y > SIDE {
                self.velocities[i].y = -self.velocities[i].y;
                p.y = p.y.clamp(0.0, SIDE);
            }
            self.positions[i] = p;
        }
        for (i, a) in self.agents.iter_mut().enumerate() {
            a.tick_motion(t, self.positions[i], self.velocities[i], &mut self.net);
        }
        self.server.tick(&mut self.net);
        for (i, a) in self.agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            self.net
                .deliver(ObjectId(i as u32).node(), self.positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), &mut self.net);
        }
        self.net.end_tick();
        self.server.tick(&mut self.net);
        // kNN controller after result ingestion.
        self.knn.tick(&mut self.server, &mut self.net);
        self.server.check_invariants();
    }

    /// True k nearest to the focal object (excluding nobody), by distance.
    fn true_knn(&self, focal: usize, k: usize) -> Vec<ObjectId> {
        let fp = self.positions[focal];
        let mut d: Vec<(f64, u32)> = self
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| (fp.distance(*p), i as u32))
            .collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        d.into_iter().take(k).map(|(_, i)| ObjectId(i)).collect()
    }
}

#[test]
fn radius_grows_until_candidates_cover_k() {
    let mut w = world(150, 81);
    // Start with a hopeless radius of 0.5 miles for k=10.
    let qid = w.knn.install(
        &mut w.server,
        ObjectId(0),
        10,
        0.5,
        Filter::True,
        &mut w.net,
    );
    for _ in 0..30 {
        w.step();
    }
    let candidates = w.knn.candidates(&w.server, qid).unwrap();
    assert!(
        candidates.len() >= 10,
        "controller never reached k candidates (got {})",
        candidates.len()
    );
    assert!(w.knn.adaptations(qid) > 0, "radius must have adapted");
    assert!(w.knn.radius(qid).unwrap() > 0.5);
}

#[test]
fn candidates_contain_true_knn_and_rank_correctly() {
    let mut w = world(150, 82);
    let k = 8;
    let qid = w
        .knn
        .install(&mut w.server, ObjectId(3), k, 2.0, Filter::True, &mut w.net);
    for _ in 0..30 {
        w.step();
    }
    // Freeze motion so the protocol view converges exactly.
    for v in w.velocities.iter_mut() {
        *v = Vec2::ZERO;
    }
    for _ in 0..5 {
        w.step();
    }
    let truth = w.true_knn(3, k);
    let candidates = w.knn.candidates(&w.server, qid).unwrap().clone();
    for oid in &truth {
        assert!(
            candidates.contains(oid),
            "true neighbor {oid:?} missing from candidates"
        );
    }
    // Ranking with exact positions reproduces the true kNN order.
    let positions = w.positions.clone();
    let ranked = w.knn.rank_candidates(&w.server, qid, positions[3], |oid| {
        Some(positions[oid.0 as usize])
    });
    let ranked_ids: Vec<ObjectId> = ranked.iter().map(|&(o, _)| o).collect();
    assert_eq!(
        ranked_ids, truth,
        "ranked candidates must equal the true kNN"
    );
    // Distances ascend.
    for pair in ranked.windows(2) {
        assert!(pair[0].1 <= pair[1].1);
    }
}

#[test]
fn radius_shrinks_when_result_is_overfull() {
    let mut w = world(200, 83);
    // Enormous initial radius for k=3: nearly everyone is a candidate.
    let qid = w.knn.install(
        &mut w.server,
        ObjectId(0),
        3,
        80.0,
        Filter::True,
        &mut w.net,
    );
    for _ in 0..40 {
        w.step();
    }
    let r = w.knn.radius(qid).unwrap();
    assert!(r < 80.0, "radius should have shrunk from 80 (is {r})");
    let n = w.knn.candidates(&w.server, qid).unwrap().len();
    assert!(
        n >= 3,
        "despite shrinking, candidates must keep covering k (have {n})"
    );
}

#[test]
fn removing_knn_query_cleans_up() {
    let mut w = world(50, 84);
    let qid = w.knn.install(
        &mut w.server,
        ObjectId(0),
        5,
        10.0,
        Filter::True,
        &mut w.net,
    );
    for _ in 0..5 {
        w.step();
    }
    assert!(w.knn.remove(&mut w.server, qid, &mut w.net));
    assert!(w.knn.radius(qid).is_none());
    assert!(w.server.query_result(qid).is_none());
    for _ in 0..3 {
        w.step();
    }
}
