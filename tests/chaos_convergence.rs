//! Chaos harness: EQP and LQP under combined uplink/downlink faults and
//! object churn must converge back to the *exact* ground truth within a
//! bounded number of fault-free ticks — and behave byte-identically at
//! any thread count.
//!
//! Scenario shape (mirrored by `scripts/check.sh`'s chaos smoke stage and
//! the `chaos` bench binary):
//! 1. fault-free warm-up (the install handshake resolves);
//! 2. a chaos window: 30% uplink drop, 30% downlink drop, 20% duplication
//!    on both directions, and ≥10% of objects disconnecting (half of them
//!    crashing — losing all local state);
//! 3. recovery: faults cleared, mobility frozen; the protocol must repair
//!    itself through leases, heartbeat digests and reconnect resyncs.
//!
//! Convergence contract (DESIGN.md §8): with `lease_ticks = 6` the system
//! reaches exact results within `3 * lease + 2` = 20 fault-free ticks.

use mobieyes::net::ChurnPlan;
use mobieyes::prelude::*;
use std::collections::BTreeSet;

const LEASE_TICKS: usize = 6;
const WARMUP: usize = 5;
const CHAOS_TICKS: usize = 10;
/// Documented convergence bound: three lease periods (expiry of crashed
/// focal leases, re-announce, re-install handshake) plus delivery slack.
const CONVERGE_BOUND: usize = 3 * LEASE_TICKS + 2;

const UPLINK_DROP: f64 = 0.3;
const DOWNLINK_DROP: f64 = 0.3;
const DUP_RATE: f64 = 0.2;
const CHURN_RATE: f64 = 0.12;

struct ChaosRun {
    /// Fault-free ticks until every query matched ground truth exactly.
    converged_at: Option<usize>,
    results: Vec<BTreeSet<ObjectId>>,
    snapshot: MetricsSnapshot,
}

fn converged(sim: &mut MobiEyesSim) -> bool {
    let truth = sim.ground_truth();
    let qids: Vec<QueryId> = sim.query_ids().to_vec();
    qids.iter().zip(&truth).all(|(&q, t)| {
        sim.server()
            .query_result(q)
            .map_or(t.is_empty(), |r| r == t)
    })
}

fn run_chaos(seed: u64, propagation: Propagation, threads: usize) -> ChaosRun {
    let config = SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_threads(threads)
        .with_lease_ticks(LEASE_TICKS);
    let mut sim = MobiEyesSim::new(config);
    for _ in 0..WARMUP {
        sim.step(false);
    }
    sim.set_churn(ChurnPlan::new(
        UPLINK_DROP,
        DUP_RATE,
        DOWNLINK_DROP,
        DUP_RATE,
        CHURN_RATE,
        CHAOS_TICKS as u64,
        seed ^ 0xC0A5_7A11,
    ));
    for _ in 0..CHAOS_TICKS {
        sim.step(false);
    }
    sim.clear_faults();
    sim.freeze(true);
    let mut converged_at = None;
    for k in 1..=CONVERGE_BOUND {
        sim.step(false);
        if converged(&mut sim) {
            converged_at = Some(k);
            break;
        }
    }
    let results = sim
        .query_ids()
        .iter()
        .map(|&q| sim.server().query_result(q).cloned().unwrap_or_default())
        .collect();
    ChaosRun {
        converged_at,
        results,
        snapshot: sim.telemetry().snapshot(),
    }
}

#[test]
fn eqp_converges_to_exact_truth_after_chaos() {
    for seed in [501, 502] {
        let run = run_chaos(seed, Propagation::Eager, 1);
        assert!(
            run.converged_at.is_some(),
            "EQP seed {seed}: not exact within {CONVERGE_BOUND} fault-free ticks"
        );
    }
}

#[test]
fn lqp_converges_to_exact_truth_after_chaos() {
    for seed in [511, 512] {
        let run = run_chaos(seed, Propagation::Lazy, 1);
        assert!(
            run.converged_at.is_some(),
            "LQP seed {seed}: not exact within {CONVERGE_BOUND} fault-free ticks"
        );
    }
}

#[test]
fn chaos_runs_are_identical_across_thread_counts() {
    for propagation in [Propagation::Eager, Propagation::Lazy] {
        let seq = run_chaos(521, propagation, 1);
        let par = run_chaos(521, propagation, 4);
        assert_eq!(
            seq.converged_at, par.converged_at,
            "{propagation:?}: recovery latency diverged across threads"
        );
        assert_eq!(
            seq.results, par.results,
            "{propagation:?}: results diverged across threads"
        );
        assert!(
            seq.snapshot.protocol_eq(&par.snapshot),
            "{propagation:?}: protocol telemetry diverged across threads"
        );
    }
}

#[test]
fn chaos_exercises_the_fault_machinery() {
    let run = run_chaos(531, Propagation::Eager, 1);
    let s = &run.snapshot;
    assert!(
        s.counter("net.fault.uplink_dropped") > 0,
        "uplink faults never fired"
    );
    assert!(
        s.counter("net.fault.dropped") > 0,
        "downlink faults never fired"
    );
    assert!(s.counter("srv.heartbeats") > 0, "heartbeats never fired");
    assert!(
        s.counter("agent.resync_requests") > 0,
        "no agent ever requested a resync"
    );
}
