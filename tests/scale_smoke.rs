//! Large-population smoke: the struct-of-arrays engine must stand up and
//! tick a 100k-object deployment without panicking, with monotonic tick
//! progress and live protocol traffic. (The perf claim itself lives in
//! `BENCH_scale.json`; this test only pins that the path *works* at a
//! scale the seed engine was never exercised at.)

use mobieyes::prelude::*;

#[test]
fn hundred_thousand_objects_tick_without_panic() {
    // Density matches the Table 1 workload (0.1 objects / sq mile); the
    // query count is kept small so the test measures the per-object hot
    // path, not query installation.
    let mut config = SimConfig::small_test(91)
        .with_objects(100_000)
        .with_queries(100)
        .with_nmo(1_000)
        .with_alen(50.0)
        .with_engine(EngineKind::Soa);
    config.area = 1_000_000.0;
    let dt = config.time_step;
    let mut sim = MobiEyesSim::new(config);
    for tick in 1..=3 {
        sim.step(false);
        assert_eq!(
            sim.now(),
            tick as f64 * dt,
            "tick progress must be monotonic"
        );
    }
    let snapshot = sim.telemetry().snapshot();
    let uplinks = snapshot.counter("srv.uplinks_processed");
    assert!(uplinks > 0, "100k objects produced no uplink traffic");
}
