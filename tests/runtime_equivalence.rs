//! The threaded actor runtime must produce *exactly* the same protocol
//! outcome as the lock-step simulator: same query results, same message
//! counts. This pins down that the protocol logic is engine-agnostic and
//! that the runtime's shard merge preserves the uplink order.

use mobieyes::core::Propagation;
use mobieyes::runtime::ThreadedSim;
use mobieyes::sim::{MobiEyesSim, SimConfig};
use mobieyes::telemetry::Telemetry;
use std::collections::BTreeSet;

fn lockstep_results(config: SimConfig) -> (Vec<BTreeSet<mobieyes::core::ObjectId>>, u64) {
    let mut sim = MobiEyesSim::new(config.clone());
    // Run the same total number of ticks as ThreadedSim (warm-up + measured)
    // without the meter reset `run()` performs.
    for _ in 0..(config.warmup_ticks + config.ticks) {
        sim.step(false);
    }
    let results = sim
        .query_ids()
        .iter()
        .map(|&q| sim.server().query_result(q).cloned().unwrap_or_default())
        .collect();
    (results, sim.net().meter().total_msgs())
}

#[test]
fn threaded_matches_lockstep_eager() {
    let config = SimConfig::small_test(201);
    let (expect, expect_msgs) = lockstep_results(config.clone());
    let out = ThreadedSim::new(config, 4).run();
    assert_eq!(out.results, expect, "query results diverged");
    assert_eq!(out.total_msgs, expect_msgs, "message counts diverged");
}

#[test]
fn threaded_matches_lockstep_lazy() {
    let config = SimConfig::small_test(202).with_propagation(Propagation::Lazy);
    let (expect, expect_msgs) = lockstep_results(config.clone());
    let out = ThreadedSim::new(config, 3).run();
    assert_eq!(out.results, expect);
    assert_eq!(out.total_msgs, expect_msgs);
}

/// With telemetry enabled in both deployments, the full metric snapshots
/// must agree on every protocol-level section — counters, gauges,
/// histograms and the canonicalized event log — with only the wall-time
/// sections (profiler spans, wall accumulators) allowed to differ.
#[test]
fn threaded_snapshot_matches_lockstep_protocol_metrics() {
    let config = SimConfig::small_test(204);
    let telemetry = Telemetry::new();
    let mut sim = MobiEyesSim::with_telemetry(config.clone(), telemetry.clone());
    for _ in 0..(config.warmup_ticks + config.ticks) {
        sim.step(false);
    }
    let lockstep = telemetry.snapshot();
    let threaded = ThreadedSim::new(config, 4).run().snapshot;
    // The comparison is meaningful: the snapshots carry real traffic and
    // protocol events on both sides.
    assert!(lockstep.counter("net.uplink.msgs") > 0);
    assert!(!lockstep.events.is_empty());
    assert!(
        lockstep.protocol_eq(&threaded),
        "protocol metrics diverged between lock-step and threaded runs"
    );
    // Wall time was recorded (the exclusion is doing real work), and the
    // phase structure itself is deterministic even if the nanos are not.
    assert!(!threaded.profiler.is_empty());
    let phases = |s: &mobieyes::telemetry::MetricsSnapshot| {
        s.profiler
            .iter()
            .map(|p| (p.phase, p.spans))
            .collect::<Vec<_>>()
    };
    assert_eq!(phases(&lockstep), phases(&threaded));
}

#[test]
fn threaded_matches_lockstep_with_optimizations() {
    let config = SimConfig::small_test(203)
        .with_grouping(true)
        .with_safe_period(true)
        .with_focal_pool(6);
    let (expect, expect_msgs) = lockstep_results(config.clone());
    let out = ThreadedSim::new(config, 5).run();
    assert_eq!(out.results, expect);
    assert_eq!(out.total_msgs, expect_msgs);
}
