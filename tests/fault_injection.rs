//! Robustness: dropped or duplicated downlink broadcasts must degrade
//! accuracy gracefully — never panic, never corrupt server state.

use mobieyes::net::FaultPlan;
use mobieyes::sim::{MobiEyesSim, SimConfig};

#[test]
fn duplicated_downlinks_are_idempotent() {
    let mut clean = MobiEyesSim::new(SimConfig::small_test(401));
    let clean_m = clean.run();

    let mut dup = MobiEyesSim::new(SimConfig::small_test(401));
    dup.set_fault(FaultPlan::new(0.0, 1.0, 99));
    let dup_m = dup.run();

    // Every downlink delivered twice: installation and updates are
    // idempotent, so accuracy must be essentially unchanged.
    assert!(
        (dup_m.avg_result_error - clean_m.avg_result_error).abs() < 0.05,
        "duplication changed error: {} vs {}",
        dup_m.avg_result_error,
        clean_m.avg_result_error
    );
}

#[test]
fn dropped_downlinks_degrade_gracefully() {
    let mut clean = MobiEyesSim::new(SimConfig::small_test(402));
    let clean_m = clean.run();

    let mut lossy = MobiEyesSim::new(SimConfig::small_test(402));
    lossy.set_fault(FaultPlan::new(0.3, 0.0, 7));
    let lossy_m = lossy.run();

    // 30% loss hurts but must not collapse the system.
    assert!(
        lossy_m.avg_result_error < 0.7,
        "error {} under loss",
        lossy_m.avg_result_error
    );
    assert!(
        lossy_m.avg_result_error >= clean_m.avg_result_error - 1e-9,
        "loss cannot improve accuracy"
    );
}

#[test]
fn total_downlink_blackout_does_not_panic() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(403));
    sim.set_fault(FaultPlan::new(1.0, 0.0, 1));
    let m = sim.run();
    // Nothing installs, so objects report nothing; the server survives.
    assert!(m.avg_result_error <= 1.0);
    assert!(m.avg_lqt_size == 0.0, "no query should ever install");
}

#[test]
fn faults_with_all_optimizations_enabled() {
    let mut sim = MobiEyesSim::new(
        SimConfig::small_test(404)
            .with_grouping(true)
            .with_safe_period(true)
            .with_focal_pool(4),
    );
    sim.set_fault(FaultPlan::new(0.2, 0.2, 5));
    let m = sim.run();
    assert!(m.avg_result_error < 0.8);
}
