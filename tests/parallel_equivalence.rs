//! Sequential-vs-parallel tick-engine equivalence.
//!
//! The parallel engine's determinism contract (DESIGN.md, "Parallel
//! execution model"): at any worker-thread count the run is byte-identical
//! to the sequential engine — same uplink queue order, same protocol
//! counters/histograms/events, same query results. Only wall-clock
//! sections may differ. These tests pin that contract at 1, 2, 4 and 8
//! threads, under both eager and lazy propagation.

use mobieyes::prelude::*;
use std::collections::BTreeSet;

struct Run {
    metrics: RunMetrics,
    snapshot: MetricsSnapshot,
    results: Vec<BTreeSet<ObjectId>>,
}

fn run_with_threads(seed: u64, propagation: Propagation, threads: usize) -> Run {
    let config = SimConfig::small_test(seed)
        .with_propagation(propagation)
        .with_threads(threads);
    let mut sim = MobiEyesSim::new(config);
    let metrics = sim.run();
    let snapshot = sim.telemetry().snapshot();
    let results = sim
        .query_ids()
        .iter()
        .map(|&q| sim.server().query_result(q).cloned().unwrap_or_default())
        .collect();
    Run {
        metrics,
        snapshot,
        results,
    }
}

/// Asserts every deterministic (non-wall-clock) field of the run matches.
fn assert_equivalent(seq: &Run, par: &Run, label: &str) {
    assert_eq!(seq.results, par.results, "{label}: query results diverged");
    assert!(
        seq.snapshot.protocol_eq(&par.snapshot),
        "{label}: protocol metrics (counters/histograms/events) diverged"
    );
    let (a, b) = (&seq.metrics, &par.metrics);
    assert_eq!(a.msgs_per_second, b.msgs_per_second, "{label}: msgs/s");
    assert_eq!(
        a.uplink_msgs_per_second, b.uplink_msgs_per_second,
        "{label}: uplink msgs/s"
    );
    assert_eq!(
        a.downlink_msgs_per_second, b.downlink_msgs_per_second,
        "{label}: downlink msgs/s"
    );
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{label}: uplink bytes");
    assert_eq!(
        a.downlink_bytes, b.downlink_bytes,
        "{label}: downlink bytes"
    );
    assert_eq!(a.avg_lqt_size, b.avg_lqt_size, "{label}: LQT size");
    assert_eq!(
        a.avg_evals_per_object_tick, b.avg_evals_per_object_tick,
        "{label}: evals/object/tick"
    );
    assert_eq!(
        a.avg_safe_period_skips, b.avg_safe_period_skips,
        "{label}: safe-period skips"
    );
    assert_eq!(
        a.avg_result_error, b.avg_result_error,
        "{label}: result error"
    );
    assert_eq!(a.avg_power_mw, b.avg_power_mw, "{label}: power");
}

#[test]
fn parallel_engine_matches_sequential_eqp() {
    let seq = run_with_threads(71, Propagation::Eager, 1);
    for threads in [2, 4, 8] {
        let par = run_with_threads(71, Propagation::Eager, threads);
        assert_equivalent(&seq, &par, &format!("EQP threads={threads}"));
    }
}

#[test]
fn parallel_engine_matches_sequential_lqp() {
    let seq = run_with_threads(72, Propagation::Lazy, 1);
    for threads in [2, 4, 8] {
        let par = run_with_threads(72, Propagation::Lazy, threads);
        assert_equivalent(&seq, &par, &format!("LQP threads={threads}"));
    }
}

#[test]
fn parallel_engine_is_deterministic_at_fixed_thread_count() {
    let a = run_with_threads(73, Propagation::Eager, 4);
    let b = run_with_threads(73, Propagation::Eager, 4);
    assert_equivalent(&a, &b, "repeat at threads=4");
}

#[test]
fn auto_thread_resolution_matches_explicit_sequential() {
    // threads = 0 resolves from MOBIEYES_THREADS / the host CPU count; the
    // outcome must be identical to an explicit single-thread run whatever
    // it resolves to.
    let seq = run_with_threads(74, Propagation::Eager, 1);
    let auto = run_with_threads(74, Propagation::Eager, 0);
    assert_equivalent(&seq, &auto, "auto threads");
}

#[test]
fn fault_injection_stays_deterministic_across_thread_counts() {
    // A non-noop fault plan forces the sequential delivery path (the plan
    // is a stateful RNG consumed in delivery order), so outcomes must stay
    // identical at any configured thread count.
    let run = |threads: usize| {
        let config = SimConfig::small_test(75).with_threads(threads);
        let mut sim = MobiEyesSim::new(config);
        sim.set_fault(mobieyes::net::FaultPlan::new(0.1, 0.05, 9));
        let metrics = sim.run();
        let snapshot = sim.telemetry().snapshot();
        (metrics.msgs_per_second, metrics.avg_result_error, snapshot)
    };
    let (msgs, err, snap) = run(1);
    for threads in [2, 4] {
        let (m, e, s) = run(threads);
        assert_eq!(msgs, m, "faulty msgs/s at threads={threads}");
        assert_eq!(err, e, "faulty error at threads={threads}");
        assert!(
            snap.protocol_eq(&s),
            "faulty protocol metrics diverged at threads={threads}"
        );
    }
}
