//! Partition crash recovery across a real process boundary (DESIGN.md
//! §13): partition services run as separate OS processes spawned from the
//! `mobieyes-serve` binary, a victim is `SIGKILL`ed mid-run, and the
//! coordinator must detect the death, run the failover (and, in respawn
//! mode, re-adoption) fence, and reconverge to exact ground truth — with
//! per-tick results and the final digest byte-identical to an in-process
//! lock-step deployment playing the same crash plan.

use mobieyes::net::PartitionCrashPlan;
use mobieyes::prelude::*;
use std::cell::RefCell;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::time::Duration;

const PARTITIONS: usize = 4;
const LEASE_TICKS: usize = 6;
/// The §13 convergence contract: three leases plus the digest-beacon
/// round trip, with mobility frozen.
const MAX_RECOVERY: usize = 3 * LEASE_TICKS + 2;
const CRASH_TICK: u64 = 8;
const POST_CRASH_TICKS: usize = 4;

fn crash_config(seed: u64) -> SimConfig {
    SimConfig::small_test(seed)
        .with_lease_ticks(LEASE_TICKS)
        .with_partitions(PARTITIONS)
}

/// Spawns one `mobieyes-serve partition` child on a fresh Unix socket and
/// waits for its `READY` line.
fn spawn_service(p: usize, incarnation: u64) -> (Child, Endpoint) {
    let listen = format!(
        "uds:{}",
        std::env::temp_dir()
            .join(format!(
                "mobieyes-crashtest-{}-{p}-{incarnation}.sock",
                std::process::id()
            ))
            .display()
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_mobieyes-serve"))
        .args([
            "partition",
            "--partition",
            &p.to_string(),
            "--listen",
            &listen,
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn partition service");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .expect("read READY line");
    let bound = ready
        .trim()
        .strip_prefix("READY ")
        .expect("service announces READY");
    (child, Endpoint::parse(bound).expect("parse bound endpoint"))
}

fn connect(endpoint: &Endpoint, p: u32) -> FramedConn {
    let stream = endpoint
        .connect_with_retry(Duration::from_secs(10))
        .expect("connect to partition service");
    let mut conn = FramedConn::new(stream);
    conn.send_hello(0).expect("send hello");
    let announced = conn.expect_hello().expect("receive hello");
    assert_eq!(announced, p, "service announced the wrong partition");
    conn
}

struct Trace {
    results: Vec<Vec<std::collections::BTreeSet<mobieyes::core::ObjectId>>>,
    converged_after: usize,
    digest: u64,
    generation: u64,
}

fn collect(sim: &MobiEyesSim) -> Vec<std::collections::BTreeSet<mobieyes::core::ObjectId>> {
    sim.query_ids()
        .iter()
        .map(|&q| sim.query_result_owned(q).unwrap_or_default())
        .collect()
}

/// Steps a deployment through the crash and the convergence phase,
/// asserting the §13 contract along the way.
fn run_traced(mut sim: MobiEyesSim, victims: &[u32], respawn: bool) -> Trace {
    let mut results = Vec::new();
    for _ in 0..CRASH_TICK as usize + POST_CRASH_TICKS {
        sim.step(false);
        results.push(collect(&sim));
    }
    if respawn {
        assert!(
            sim.cluster().dead_partitions().is_empty(),
            "respawn must bring every victim back"
        );
    } else {
        assert_eq!(
            sim.cluster().dead_partitions(),
            victims,
            "victims must stay fenced off under failover"
        );
    }
    assert!(
        sim.cluster().map_generation() > 0,
        "failover fence must run"
    );
    sim.freeze(true);
    let truth = sim.ground_truth();
    let mut converged_after = None;
    for extra in 0..=MAX_RECOVERY {
        let exact = sim.query_ids().iter().zip(&truth).all(|(&q, t)| {
            sim.query_result_owned(q)
                .map(|r| &r == t)
                .unwrap_or(t.is_empty())
        });
        if exact {
            converged_after = Some(extra);
            break;
        }
        sim.step(false);
    }
    let converged_after =
        converged_after.unwrap_or_else(|| panic!("no reconvergence within {MAX_RECOVERY} ticks"));
    let digest = sim.result_digest();
    let generation = sim.cluster().map_generation();
    sim.shutdown();
    Trace {
        results,
        converged_after,
        digest,
        generation,
    }
}

fn assert_process_crash_recovery(seed: u64, recovery: RecoveryKind, rebalance_ticks: usize) {
    let plan = PartitionCrashPlan::seeded(seed, PARTITIONS as u32, 1, CRASH_TICK);
    let victims = plan.victims.clone();
    let config = || crash_config(seed).with_rebalance_ticks(rebalance_ticks);

    // The live deployment: one OS process per partition.
    let children: Rc<RefCell<Vec<Option<Child>>>> = Rc::new(RefCell::new(Vec::new()));
    let mut conns = Vec::with_capacity(PARTITIONS);
    for p in 0..PARTITIONS {
        let (child, endpoint) = spawn_service(p, 0);
        conns.push(connect(&endpoint, p as u32));
        children.borrow_mut().push(Some(child));
    }
    let mut sim = MobiEyesSim::with_remote_cluster(config(), Telemetry::new(), conns);
    sim.set_crash_plan(plan.clone());
    sim.set_recovery(recovery);
    let kill_slots = Rc::clone(&children);
    sim.set_crash_hook(move |p| {
        // SIGKILL, then reap: the child's sockets are provably closed
        // before the coordinator's liveness probe runs.
        if let Some(mut child) = kill_slots.borrow_mut()[p as usize].take() {
            child.kill().expect("SIGKILL the victim service");
            child.wait().expect("reap the victim service");
        }
    });
    if recovery == RecoveryKind::Respawn {
        let respawn_slots = Rc::clone(&children);
        let incarnation = RefCell::new(0u64);
        sim.set_respawn_hook(move |p| {
            *incarnation.borrow_mut() += 1;
            let (child, endpoint) = spawn_service(p as usize, *incarnation.borrow());
            let conn = connect(&endpoint, p);
            respawn_slots.borrow_mut()[p as usize] = Some(child);
            Some(conn)
        });
    }
    let live = run_traced(sim, &victims, recovery == RecoveryKind::Respawn);
    // Survivors (and respawned victims) saw Shutdown and must exit
    // cleanly; failover victims were reaped by the kill hook.
    for (p, slot) in children.borrow_mut().iter_mut().enumerate() {
        if let Some(mut child) = slot.take() {
            let status = child.wait().expect("wait for partition service");
            assert!(status.success(), "partition {p} exited with {status}");
        }
    }

    // The reference: the identical crash plan on the in-process bus.
    let mut reference = MobiEyesSim::new(config());
    reference.set_crash_plan(plan);
    reference.set_recovery(recovery);
    let lockstep = run_traced(reference, &victims, recovery == RecoveryKind::Respawn);

    assert_eq!(
        live.results, lockstep.results,
        "per-tick results diverged between the process deployment and lock-step (seed {seed})"
    );
    assert_eq!(
        live.digest, lockstep.digest,
        "post-recovery digest diverged (seed {seed})"
    );
    assert_eq!(live.converged_after, lockstep.converged_after);
    assert_eq!(
        live.generation, lockstep.generation,
        "partition-map generation diverged (seed {seed})"
    );
    if rebalance_ticks > 0 {
        // The crash tick (8) straddles the rebalance schedule (5, 10, ...):
        // the load fence installed a generation before the SIGKILL and the
        // failover fence bumped again. Under respawn the victim rejoins, so
        // later load fences keep installing; under failover the partition
        // stays dead and every later attempt skips cleanly (the recovery
        // fences own the map while any slot is dead).
        let floor = if recovery == RecoveryKind::Respawn {
            3
        } else {
            2
        };
        assert!(
            live.generation >= floor,
            "expected rebalance generations around the crash, got {}",
            live.generation
        );
    }
}

#[test]
fn sigkilled_partition_process_fails_over_and_reconverges() {
    assert_process_crash_recovery(81, RecoveryKind::Failover, 0);
}

#[test]
fn sigkilled_partition_process_respawns_and_reconverges() {
    assert_process_crash_recovery(82, RecoveryKind::Respawn, 0);
}

/// The ISSUE-10 scenario: periodic load rebalancing is live, a partition
/// process is SIGKILLed between two installed map generations, and the
/// deployment must fence, recover, keep rebalancing, and still match the
/// lock-step reference byte-for-byte.
#[test]
fn sigkill_between_installed_generations_fails_over_and_reconverges() {
    assert_process_crash_recovery(81, RecoveryKind::Failover, 5);
}

#[test]
fn sigkill_between_installed_generations_respawns_and_reconverges() {
    assert_process_crash_recovery(82, RecoveryKind::Respawn, 5);
}
