//! The paper's example queries carry durations ("during the next 2 hours")
//! and deliver answers to their issuer ("give *me* the positions ..."):
//! query lifetimes and focal-side result delivery, end to end.

use mobieyes::core::server::Net;
use mobieyes::core::{Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, Server};
use mobieyes::geo::{Grid, Point, QueryRegion, Rect, Vec2};
use mobieyes::net::BaseStationLayout;
use std::sync::Arc;

const SIDE: f64 = 100.0;
const TS: f64 = 30.0;

struct Stack {
    net: Net,
    server: Server,
    agents: Vec<MovingObjectAgent>,
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
    tick: usize,
}

fn stack(n: usize, deliver: bool) -> Stack {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config =
        Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)).with_result_delivery(deliver));
    let net = Net::new(BaseStationLayout::new(universe, 20.0));
    let server = Server::new(Arc::clone(&config));
    let positions: Vec<Point> = (0..n)
        .map(|i| Point::new(20.0 + 3.0 * i as f64, 50.0))
        .collect();
    let velocities = vec![Vec2::ZERO; n];
    let agents = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.05,
                p,
                Vec2::ZERO,
                Arc::clone(&config),
            )
        })
        .collect();
    Stack {
        net,
        server,
        agents,
        positions,
        velocities,
        tick: 0,
    }
}

impl Stack {
    fn now(&self) -> f64 {
        self.tick as f64 * TS
    }

    fn step(&mut self) {
        self.tick += 1;
        let t = self.now();
        for i in 0..self.positions.len() {
            self.positions[i] = self.positions[i] + self.velocities[i] * TS;
        }
        for (i, a) in self.agents.iter_mut().enumerate() {
            a.tick_motion(t, self.positions[i], self.velocities[i], &mut self.net);
        }
        self.server.expire_queries(t, &mut self.net);
        self.server.tick(&mut self.net);
        for (i, a) in self.agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            self.net
                .deliver(ObjectId(i as u32).node(), self.positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), &mut self.net);
        }
        self.net.end_tick();
        self.server.tick(&mut self.net);
        self.server.check_invariants();
    }
}

#[test]
fn expired_queries_are_removed_everywhere() {
    let mut s = stack(5, false);
    // "During the next 2 minutes": expires at t = 120 s.
    let q = s.server.install_query_with_lifetime(
        ObjectId(0),
        QueryRegion::circle(4.0),
        Filter::True,
        Some(120.0),
        &mut s.net,
    );
    for _ in 0..3 {
        s.step();
    }
    assert!(s.server.query_result(q).unwrap().contains(&ObjectId(1)));
    // Step past the expiry.
    for _ in 0..3 {
        s.step();
    }
    assert!(
        s.server.query_result(q).is_none(),
        "expired query must be gone"
    );
    for a in &s.agents {
        assert!(
            !a.installed_queries().any(|x| x == q),
            "agent kept expired query"
        );
    }
    assert!(!s.agents[0].has_mq(), "ex-focal must lose hasMQ");
}

#[test]
fn unexpired_queries_survive() {
    let mut s = stack(4, false);
    let forever = s.server.install_query(
        ObjectId(0),
        QueryRegion::circle(4.0),
        Filter::True,
        &mut s.net,
    );
    let brief = s.server.install_query_with_lifetime(
        ObjectId(0),
        QueryRegion::circle(6.0),
        Filter::True,
        Some(90.0),
        &mut s.net,
    );
    for _ in 0..6 {
        s.step();
    }
    assert!(s.server.query_result(forever).is_some());
    assert!(s.server.query_result(brief).is_none());
    // The focal still has its unexpired query: hasMQ stays on.
    assert!(s.agents[0].has_mq());
}

#[test]
fn result_delivery_keeps_focal_view_in_sync() {
    let mut s = stack(6, true);
    let q = s.server.install_query(
        ObjectId(0),
        QueryRegion::circle(4.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..4 {
        s.step();
    }
    let server_view = s.server.query_result(q).unwrap().clone();
    let focal_view = s.agents[0].own_result(q).cloned().unwrap_or_default();
    assert_eq!(
        focal_view, server_view,
        "focal must see the same result as the server"
    );
    assert!(focal_view.contains(&ObjectId(1)));

    // Object 1 leaves; the focal's view follows.
    s.velocities[1] = Vec2::new(0.2, 0.0);
    s.step();
    s.velocities[1] = Vec2::ZERO;
    for _ in 0..3 {
        s.step();
    }
    let focal_view = s.agents[0].own_result(q).cloned().unwrap_or_default();
    assert!(
        !focal_view.contains(&ObjectId(1)),
        "departure must reach the focal"
    );
    assert_eq!(&focal_view, s.server.query_result(q).unwrap());
}

#[test]
fn delivery_off_means_no_focal_view_and_fewer_unicasts() {
    let mut with = stack(6, true);
    let mut without = stack(6, false);
    for s in [&mut with, &mut without] {
        s.server.install_query(
            ObjectId(0),
            QueryRegion::circle(4.0),
            Filter::True,
            &mut s.net,
        );
        for _ in 0..4 {
            s.step();
        }
    }
    assert!(without.agents[0]
        .own_result(mobieyes::core::QueryId(0))
        .is_none());
    assert!(
        with.net.meter().unicast_msgs > without.net.meter().unicast_msgs,
        "delivery must cost unicasts"
    );
}
