//! MobiEyes vs the centralized engines on the *same* mobility trace: the
//! distributed protocol must converge to (almost) the same answers a
//! central server computes with full information.

use mobieyes::baselines::{CentralEngine, ObjectReport, QueryDef, QueryIndexEngine};
use mobieyes::core::{Filter, ObjectId, QueryId};
use mobieyes::geo::QueryRegion;
use mobieyes::sim::{
    CentralKind, CentralSim, MessagingKind, MessagingModel, MobiEyesSim, Mobility, SimConfig,
    Workload,
};
use std::sync::Arc;

#[test]
fn centralized_engines_agree_with_each_other() {
    for seed in [301, 302] {
        let oi = CentralSim::new(SimConfig::small_test(seed), CentralKind::ObjectIndex).run();
        let qi = CentralSim::new(SimConfig::small_test(seed), CentralKind::QueryIndex).run();
        assert!(oi.avg_result_error < 1e-9);
        assert!(qi.avg_result_error < 1e-9);
    }
}

#[test]
fn mobieyes_results_overlap_with_central_results() {
    // Drive a query-index engine and the MobiEyes protocol over the same
    // trace and compare final result sets: MobiEyes lags by at most one
    // protocol round, so the overlap must be high.
    let config = SimConfig::small_test(303);
    let workload = Workload::generate(&config);
    let mut mobility = Mobility::new(
        &workload,
        config.objects_changing_velocity,
        config.time_step,
        config.seed,
    );
    let mut engine = QueryIndexEngine::new();
    for i in 0..workload.objects.len() {
        engine.register_object(ObjectId(i as u32), mobieyes::core::Properties::new());
    }
    for (q, spec) in workload.queries.iter().enumerate() {
        engine.install_query(QueryDef {
            qid: QueryId(q as u32),
            focal: ObjectId(spec.focal_idx as u32),
            region: QueryRegion::circle(spec.radius),
            filter: Arc::new(Filter::with_selectivity(
                workload.selectivity,
                spec.filter_salt,
            )),
        });
    }

    let mut sim = MobiEyesSim::new(config.clone());
    let total = config.warmup_ticks + config.ticks;
    for k in 0..total {
        // Keep both systems on the identical trace: the engine gets its
        // reports from a mobility clone stepped in lock step with the sim.
        mobility.step();
        let t = (k + 1) as f64 * config.time_step;
        let reports: Vec<ObjectReport> = (0..mobility.len())
            .map(|i| ObjectReport {
                oid: ObjectId(i as u32),
                pos: mobility.positions[i],
                vel: mobility.velocities[i],
                tm: t,
            })
            .collect();
        engine.tick(&reports, t);
        sim.step(false);
    }

    let mut common = 0usize;
    let mut central_total = 0usize;
    for (q, &qid) in sim.query_ids().iter().enumerate() {
        let central = engine
            .result(QueryId(q as u32))
            .cloned()
            .unwrap_or_default();
        let distributed = sim.server().query_result(qid).cloned().unwrap_or_default();
        central_total += central.len();
        common += central.intersection(&distributed).count();
    }
    assert!(
        central_total > 0,
        "central engine found nothing — workload broken"
    );
    let overlap = common as f64 / central_total as f64;
    assert!(
        overlap > 0.85,
        "distributed results cover only {overlap:.2} of central results"
    );
}

#[test]
fn mobieyes_messaging_beats_naive() {
    let config = SimConfig::small_test(304);
    let mobieyes = MobiEyesSim::new(config.clone()).run();
    let naive = MessagingModel::new(config, MessagingKind::Naive).run();
    assert!(
        mobieyes.msgs_per_second < naive.msgs_per_second,
        "MobiEyes {} msgs/s must undercut naive {}",
        mobieyes.msgs_per_second,
        naive.msgs_per_second
    );
}

#[test]
fn lqp_uplink_beats_central_optimal() {
    // Figure 6: LQP slashes uplink traffic below even the central-optimal
    // scheme, because non-focal objects never talk to the server.
    let config = SimConfig::small_test(305).with_propagation(mobieyes::core::Propagation::Lazy);
    let lqp = MobiEyesSim::new(config.clone()).run();
    let opt = MessagingModel::new(config, MessagingKind::CentralOptimal).run();
    assert!(
        lqp.uplink_msgs_per_second < opt.uplink_msgs_per_second,
        "LQP uplink {} must undercut central-optimal {}",
        lqp.uplink_msgs_per_second,
        opt.uplink_msgs_per_second
    );
}
