//! Query lifecycle edge cases driven through the full protocol stack:
//! rectangular regions, query churn (install/remove mid-run), and focal
//! objects with more than 64 queries (bitmap slot exhaustion).

use mobieyes::core::server::Net;
use mobieyes::core::{Filter, MovingObjectAgent, ObjectId, Properties, ProtocolConfig, Server};
use mobieyes::geo::{Grid, Point, QueryRegion, Rect, Vec2};
use mobieyes::net::BaseStationLayout;
use std::sync::Arc;

const SIDE: f64 = 100.0;
const TS: f64 = 30.0;

struct Stack {
    net: Net,
    server: Server,
    agents: Vec<MovingObjectAgent>,
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
    tick: usize,
}

fn stack(n: usize, grouping: bool) -> Stack {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)).with_grouping(grouping));
    let net = Net::new(BaseStationLayout::new(universe, 20.0));
    let server = Server::new(Arc::clone(&config));
    // Objects on a diagonal, 3 miles apart, standing still by default.
    let positions: Vec<Point> = (0..n)
        .map(|i| Point::new(20.0 + 3.0 * i as f64, 50.0))
        .collect();
    let velocities = vec![Vec2::ZERO; n];
    let agents = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.05,
                p,
                Vec2::ZERO,
                Arc::clone(&config),
            )
        })
        .collect();
    Stack {
        net,
        server,
        agents,
        positions,
        velocities,
        tick: 0,
    }
}

impl Stack {
    fn step(&mut self) {
        self.tick += 1;
        let t = self.tick as f64 * TS;
        for i in 0..self.positions.len() {
            self.positions[i] = self.positions[i] + self.velocities[i] * TS;
        }
        for (i, a) in self.agents.iter_mut().enumerate() {
            a.tick_motion(t, self.positions[i], self.velocities[i], &mut self.net);
        }
        self.server.tick(&mut self.net);
        for (i, a) in self.agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            self.net
                .deliver(ObjectId(i as u32).node(), self.positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), &mut self.net);
        }
        self.net.end_tick();
        self.server.tick(&mut self.net);
        self.server.check_invariants();
    }
}

#[test]
fn rectangular_query_regions_work_end_to_end() {
    let mut s = stack(5, false);
    // A 4x1-mile rectangle around object 0: objects at x=23 (3 away) are
    // inside the half-width 4 but outside half-height... use half_w=4,
    // half_h=2 so objects 1 (3 miles east) is inside and 2 (6 miles) out.
    let qid = s.server.install_query(
        ObjectId(0),
        QueryRegion::rect(4.0, 2.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..4 {
        s.step();
    }
    let result = s.server.query_result(qid).unwrap();
    assert!(
        result.contains(&ObjectId(1)),
        "object 3 mi east inside 4-mi half-width"
    );
    assert!(!result.contains(&ObjectId(2)), "object 6 mi east outside");
    // Move object 1 north out of the 2-mile half-height but stay within x.
    s.velocities[1] = Vec2::new(0.0, 0.1);
    s.step();
    s.velocities[1] = Vec2::ZERO;
    for _ in 0..2 {
        s.step();
    }
    assert!(
        !s.server.query_result(qid).unwrap().contains(&ObjectId(1)),
        "object 3 mi north must be outside the 2-mile half-height"
    );
}

#[test]
fn query_churn_installs_and_removes_cleanly() {
    let mut s = stack(6, false);
    let q1 = s.server.install_query(
        ObjectId(0),
        QueryRegion::circle(4.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..3 {
        s.step();
    }
    assert!(!s.server.query_result(q1).unwrap().is_empty());

    // Install a second query mid-run, on a different focal.
    let q2 = s.server.install_query(
        ObjectId(3),
        QueryRegion::circle(4.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..3 {
        s.step();
    }
    assert!(s.server.query_result(q2).unwrap().contains(&ObjectId(2)));

    // Remove the first query: state must clear everywhere.
    assert!(s.server.remove_query(q1, &mut s.net));
    for _ in 0..2 {
        s.step();
    }
    assert!(s.server.query_result(q1).is_none());
    for a in &s.agents {
        assert!(
            !a.installed_queries().any(|q| q == q1),
            "agent kept removed query"
        );
    }
    // The second query keeps working.
    assert!(s.server.query_result(q2).unwrap().contains(&ObjectId(2)));
    // Object 0 is no longer focal.
    assert!(!s.agents[0].has_mq());
    assert!(s.agents[3].has_mq());
}

#[test]
fn focal_with_more_than_64_queries_stays_correct() {
    // 70 concentric queries on one focal exhaust the 64-slot group bitmap;
    // the overflow queries must fall back to itemized reports without
    // corrupting any result.
    let mut s = stack(4, true);
    let qids: Vec<_> = (0..70)
        .map(|i| {
            s.server.install_query(
                ObjectId(0),
                QueryRegion::circle(2.0 + 0.1 * i as f64),
                Filter::True,
                &mut s.net,
            )
        })
        .collect();
    for _ in 0..4 {
        s.step();
    }
    // Object 1 sits 3 miles east: it belongs exactly to the queries with
    // radius >= 3 (i = 10..70).
    for (i, &qid) in qids.iter().enumerate() {
        let inside = 2.0 + 0.1 * i as f64 >= 3.0;
        let got = s.server.query_result(qid).unwrap().contains(&ObjectId(1));
        assert_eq!(got, inside, "query {i} (r={})", 2.0 + 0.1 * i as f64);
    }
    // Removing an overflow query and a slotted query both clean up.
    assert!(s.server.remove_query(qids[69], &mut s.net));
    assert!(s.server.remove_query(qids[0], &mut s.net));
    for _ in 0..2 {
        s.step();
    }
    s.server.check_invariants();
}

#[test]
fn reinstalled_focal_keeps_reporting() {
    // Remove a focal's only query, then bind a new query to the same
    // object: the hasMQ flag must flip off and on again and dead reckoning
    // must resume.
    let mut s = stack(3, false);
    let q1 = s.server.install_query(
        ObjectId(0),
        QueryRegion::circle(5.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..3 {
        s.step();
    }
    assert!(s.agents[0].has_mq());
    s.server.remove_query(q1, &mut s.net);
    for _ in 0..2 {
        s.step();
    }
    assert!(!s.agents[0].has_mq());
    let q2 = s.server.install_query(
        ObjectId(0),
        QueryRegion::circle(5.0),
        Filter::True,
        &mut s.net,
    );
    for _ in 0..3 {
        s.step();
    }
    assert!(s.agents[0].has_mq());
    assert!(s.server.query_result(q2).unwrap().contains(&ObjectId(1)));
}
