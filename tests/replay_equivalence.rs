//! Durable-log replay equivalence: a server torn down mid-run and rebuilt
//! purely from its journal must be byte-identical to the uninterrupted
//! twin — same per-tick results from the swap point on, same final
//! digests — across propagation modes, partition counts and seeds, with
//! and without mid-run checkpoint compaction (DESIGN.md §14).

use mobieyes::prelude::*;
use mobieyes::telemetry::rec_keys;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const SWAP_TICK: usize = 8;
const TOTAL_TICKS: usize = 15;

/// Fresh per-combo log root under the system temp dir.
fn store_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobieyes-replay-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64, mode: Propagation, partitions: usize, root: &Path) -> SimConfig {
    SimConfig::small_test(seed)
        .with_propagation(mode)
        .with_partitions(partitions)
        .with_store_dir(root.to_path_buf())
}

/// Per-tick owned result sets for every installed query.
fn results(sim: &MobiEyesSim) -> Vec<Option<BTreeSet<ObjectId>>> {
    sim.query_ids()
        .to_vec()
        .iter()
        .map(|&q| sim.query_result_owned(q))
        .collect()
}

/// Runs one combo twice — interrupted (rebuilt from the log at
/// `SWAP_TICK`) and uninterrupted — and demands byte-identical behaviour
/// from the swap point to the end.
fn check_combo(seed: u64, mode: Propagation, partitions: usize, checkpoint_ticks: usize) {
    let tag = format!("{seed}-{mode:?}-{partitions}p-ck{checkpoint_ticks}");
    let root_a = store_root(&format!("{tag}-a"));
    let root_b = store_root(&format!("{tag}-b"));
    let mut interrupted = MobiEyesSim::new(
        config(seed, mode, partitions, &root_a).with_store_checkpoint_ticks(checkpoint_ticks),
    );
    let mut twin = MobiEyesSim::new(
        config(seed, mode, partitions, &root_b).with_store_checkpoint_ticks(checkpoint_ticks),
    );
    assert!(interrupted.has_store() && twin.has_store());
    let warmup = interrupted.config.warmup_ticks;
    for _ in 0..warmup {
        interrupted.step(false);
        twin.step(false);
    }
    for tick in 0..TOTAL_TICKS {
        if tick == SWAP_TICK {
            // Crash drill: throw the in-memory server tier away and
            // rebuild it from nothing but the on-disk journal.
            if partitions > 1 {
                for p in 0..partitions as u32 {
                    interrupted.cluster_mut().rebuild_partition_from_log(p);
                }
            } else {
                interrupted.rebuild_server_from_log();
            }
            assert_eq!(
                results(&interrupted),
                results(&twin),
                "[{tag}] replay diverged at the swap tick"
            );
        }
        interrupted.step(true);
        twin.step(true);
        assert_eq!(
            results(&interrupted),
            results(&twin),
            "[{tag}] per-tick results diverged at tick {tick}"
        );
    }
    assert_eq!(
        interrupted.result_digest(),
        twin.result_digest(),
        "[{tag}] final result digest diverged"
    );
    if partitions == 1 {
        assert_eq!(
            interrupted.server().state_digest(),
            twin.server().state_digest(),
            "[{tag}] final state digest diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn single_server_replay_matches_uninterrupted_twin() {
    for seed in [1, 2] {
        for mode in [Propagation::Eager, Propagation::Lazy] {
            check_combo(seed, mode, 1, 0);
        }
    }
}

#[test]
fn cluster_replay_matches_uninterrupted_twin() {
    for seed in [1, 2] {
        for mode in [Propagation::Eager, Propagation::Lazy] {
            check_combo(seed, mode, 4, 0);
        }
    }
}

/// One combo per tier exercises mid-run checkpoint compaction, so the
/// rebuild replays snapshot + tail instead of the full log.
#[test]
fn replay_from_checkpoint_matches_uninterrupted_twin() {
    check_combo(1, Propagation::Eager, 1, 5);
    check_combo(2, Propagation::Lazy, 4, 5);
}

/// Historical trajectories agree between tiers: the per-partition logs of
/// a 4-way cluster, merged, index the same motion samples as the single
/// server's log of the identical run.
#[test]
fn trajectory_queries_match_across_tiers() {
    let root_single = store_root("traj-1p");
    let root_cluster = store_root("traj-4p");
    let mut single = MobiEyesSim::new(config(3, Propagation::Eager, 1, &root_single));
    let mut cluster = MobiEyesSim::new(config(3, Propagation::Eager, 4, &root_cluster));
    for _ in 0..single.config.warmup_ticks {
        single.step(false);
        cluster.step(false);
    }
    for _ in 0..TOTAL_TICKS {
        single.step(true);
        cluster.step(true);
    }
    let mut sampled = 0usize;
    for oid in 0..single.config.num_objects as u32 {
        let oid = ObjectId(oid);
        let a = single.trajectory(oid, 0.0, f64::INFINITY);
        let b = cluster.trajectory(oid, 0.0, f64::INFINITY);
        assert_eq!(a, b, "trajectory of {oid:?} diverged between tiers");
        sampled += a.len();
    }
    assert!(sampled > 0, "no motion samples were journaled at all");
    let _ = std::fs::remove_dir_all(&root_single);
    let _ = std::fs::remove_dir_all(&root_cluster);
}

/// A store-backed cluster that loses a partition recovers its queries by
/// log replay (the fast path), not the agent round trip — and still
/// reconverges to the same results as a crash-free run's ground truth.
#[test]
fn failover_recovers_queries_from_the_log() {
    let root = store_root("failover");
    let mut sim = MobiEyesSim::new(
        config(4, Propagation::Eager, 4, &root)
            .with_partition_crash_ticks(5)
            .with_recovery(RecoveryKind::Failover),
    );
    sim.run();
    let snapshot = sim.cluster().bus_telemetry().snapshot();
    assert!(
        snapshot.counter(rec_keys::FENCES) >= 1,
        "the crash plan never fired"
    );
    assert!(
        snapshot.counter(rec_keys::QUERIES_REPLAYED) >= 1,
        "no query was recovered via log replay despite the store"
    );
    let _ = std::fs::remove_dir_all(&root);
}
