//! Regression tests for result staleness: an object that leaves a query's
//! monitoring region (by fast movement or by a region shrink) while being
//! a target must disappear from the server's result — silently dropping
//! the LQT entry is not enough.

use mobieyes::core::server::Net;
use mobieyes::core::{
    Filter, MovingObjectAgent, ObjectId, Propagation, Properties, ProtocolConfig, Server,
};
use mobieyes::geo::{Grid, Point, QueryRegion, Rect, Vec2};
use mobieyes::net::BaseStationLayout;
use std::sync::Arc;

const SIDE: f64 = 100.0;
const TS: f64 = 30.0;

fn build(propagation: Propagation) -> (Server, Net, Arc<ProtocolConfig>) {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config =
        Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)).with_propagation(propagation));
    let server = Server::new(Arc::clone(&config));
    let net = Net::new(BaseStationLayout::new(universe, 25.0));
    (server, net, config)
}

fn step(
    t: f64,
    agents: &mut [MovingObjectAgent],
    positions: &[Point],
    velocities: &[Vec2],
    server: &mut Server,
    net: &mut Net,
) {
    for (i, a) in agents.iter_mut().enumerate() {
        a.tick_motion(t, positions[i], velocities[i], net);
    }
    server.tick(net);
    for (i, a) in agents.iter_mut().enumerate() {
        let mut inbox = Vec::new();
        net.deliver(a.oid().node(), positions[i], &mut inbox);
        a.tick_process(t, inbox.iter().map(|m| &**m), net);
    }
    net.end_tick();
    server.tick(net);
    server.check_invariants();
}

/// A target object teleporting far outside the monitoring region in one
/// step must be reported out — under both propagation modes (LQP silences
/// new-query discovery, never result maintenance).
#[test]
fn fast_exit_reports_departure() {
    for propagation in [Propagation::Eager, Propagation::Lazy] {
        let (mut server, mut net, config) = build(propagation);
        let mut agents = vec![
            MovingObjectAgent::new(
                ObjectId(0),
                Properties::new(),
                0.1,
                Point::new(55.0, 55.0),
                Vec2::ZERO,
                Arc::clone(&config),
            ),
            MovingObjectAgent::new(
                ObjectId(1),
                Properties::new(),
                0.1,
                Point::new(56.0, 55.0),
                Vec2::ZERO,
                Arc::clone(&config),
            ),
        ];
        let mut positions = vec![Point::new(55.0, 55.0), Point::new(56.0, 55.0)];
        let velocities = vec![Vec2::ZERO; 2];
        let qid = server.install_query(
            ObjectId(0),
            QueryRegion::circle(4.0),
            Filter::True,
            &mut net,
        );
        for k in 1..=3 {
            step(
                k as f64 * TS,
                &mut agents,
                &positions,
                &velocities,
                &mut server,
                &mut net,
            );
        }
        assert!(
            server.query_result(qid).unwrap().contains(&ObjectId(1)),
            "{propagation:?}: object must join first"
        );
        // Teleport object 1 across the universe (outside the monitoring
        // region in a single step).
        positions[1] = Point::new(5.0, 5.0);
        for k in 4..=6 {
            step(
                k as f64 * TS,
                &mut agents,
                &positions,
                &velocities,
                &mut server,
                &mut net,
            );
        }
        assert!(
            !server.query_result(qid).unwrap().contains(&ObjectId(1)),
            "{propagation:?}: stale member survived a fast exit"
        );
    }
}

/// Shrinking a query's region (via the server query-update API) must evict
/// targets that fall outside the new monitoring region.
#[test]
fn region_shrink_evicts_far_targets() {
    let (mut server, mut net, config) = build(Propagation::Eager);
    let mut agents: Vec<MovingObjectAgent> = (0..3)
        .map(|i| {
            MovingObjectAgent::new(
                ObjectId(i),
                Properties::new(),
                0.1,
                Point::new(50.0 + 12.0 * i as f64, 55.0),
                Vec2::ZERO,
                Arc::clone(&config),
            )
        })
        .collect();
    let positions: Vec<Point> = (0..3)
        .map(|i| Point::new(50.0 + 12.0 * i as f64, 55.0))
        .collect();
    let velocities = vec![Vec2::ZERO; 3];
    // Radius 30: both other objects (12 and 24 miles away) are targets.
    let qid = server.install_query(
        ObjectId(0),
        QueryRegion::circle(30.0),
        Filter::True,
        &mut net,
    );
    for k in 1..=3 {
        step(
            k as f64 * TS,
            &mut agents,
            &positions,
            &velocities,
            &mut server,
            &mut net,
        );
    }
    let r = server.query_result(qid).unwrap();
    assert!(r.contains(&ObjectId(1)) && r.contains(&ObjectId(2)));

    // Shrink to radius 4: object 2 (24 mi away) leaves the monitoring
    // region entirely; object 1 (12 mi) stays in it but outside the circle.
    assert!(server.update_query_region(qid, QueryRegion::circle(4.0), &mut net));
    for k in 4..=6 {
        step(
            k as f64 * TS,
            &mut agents,
            &positions,
            &velocities,
            &mut server,
            &mut net,
        );
    }
    let r = server.query_result(qid).unwrap();
    assert!(
        !r.contains(&ObjectId(1)),
        "object inside region but outside circle must leave"
    );
    assert!(
        !r.contains(&ObjectId(2)),
        "object outside shrunk region must leave"
    );

    // Growing it back re-admits them.
    assert!(server.update_query_region(qid, QueryRegion::circle(30.0), &mut net));
    for k in 7..=9 {
        step(
            k as f64 * TS,
            &mut agents,
            &positions,
            &velocities,
            &mut server,
            &mut net,
        );
    }
    let r = server.query_result(qid).unwrap();
    assert!(
        r.contains(&ObjectId(1)) && r.contains(&ObjectId(2)),
        "grown region re-admits"
    );
}
