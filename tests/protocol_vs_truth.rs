//! End-to-end accuracy of the distributed protocol against exact ground
//! truth, across propagation modes and key parameters.

use mobieyes::core::Propagation;
use mobieyes::sim::{MobiEyesSim, SimConfig};

#[test]
fn eager_propagation_tracks_ground_truth_closely() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(101));
    let m = sim.run();
    assert!(
        m.avg_result_error < 0.15,
        "EQP error {} too high — protocol is not tracking results",
        m.avg_result_error
    );
}

#[test]
fn lazy_propagation_error_is_bounded() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(102).with_propagation(Propagation::Lazy));
    let m = sim.run();
    // LQP trades accuracy for messages: error is non-trivial but must stay
    // far from total failure.
    assert!(
        m.avg_result_error < 0.5,
        "LQP error {} looks broken",
        m.avg_result_error
    );
}

#[test]
fn lazy_error_exceeds_eager_error() {
    let eager = MobiEyesSim::new(SimConfig::small_test(103)).run();
    let lazy =
        MobiEyesSim::new(SimConfig::small_test(103).with_propagation(Propagation::Lazy)).run();
    assert!(
        lazy.avg_result_error >= eager.avg_result_error,
        "lazy error {} should not beat eager {}",
        lazy.avg_result_error,
        eager.avg_result_error
    );
}

#[test]
fn lqp_error_decreases_with_more_velocity_changes() {
    // Figure 2's central claim: frequent velocity-vector changes repair
    // LQP's missed installations faster.
    let base = SimConfig::small_test(104).with_propagation(Propagation::Lazy);
    let few = MobiEyesSim::new(base.clone().with_nmo(5)).run();
    let many = MobiEyesSim::new(base.with_nmo(150)).run();
    assert!(
        many.avg_result_error <= few.avg_result_error + 0.02,
        "error with nmo=150 ({}) should be <= error with nmo=5 ({})",
        many.avg_result_error,
        few.avg_result_error
    );
}

#[test]
fn results_are_live_and_change_over_time() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(105));
    for _ in 0..8 {
        sim.step(false);
    }
    let snapshot: Vec<_> = sim
        .query_ids()
        .iter()
        .map(|&q| sim.server().query_result(q).cloned().unwrap_or_default())
        .collect();
    for _ in 0..10 {
        sim.step(false);
    }
    let later: Vec<_> = sim
        .query_ids()
        .iter()
        .map(|&q| sim.server().query_result(q).cloned().unwrap_or_default())
        .collect();
    assert_ne!(
        snapshot, later,
        "continuous queries must evolve as objects move"
    );
}

#[test]
fn grouping_preserves_accuracy() {
    // Skewed focal distribution so groups actually form.
    let plain = MobiEyesSim::new(SimConfig::small_test(106).with_focal_pool(5)).run();
    let grouped = MobiEyesSim::new(
        SimConfig::small_test(106)
            .with_focal_pool(5)
            .with_grouping(true),
    )
    .run();
    assert!(
        (grouped.avg_result_error - plain.avg_result_error).abs() < 0.08,
        "grouping changed accuracy: {} vs {}",
        grouped.avg_result_error,
        plain.avg_result_error
    );
}

#[test]
fn safe_period_preserves_accuracy() {
    let plain = MobiEyesSim::new(SimConfig::small_test(107)).run();
    let safe = MobiEyesSim::new(SimConfig::small_test(107).with_safe_period(true)).run();
    assert!(
        (safe.avg_result_error - plain.avg_result_error).abs() < 0.08,
        "safe periods changed accuracy: {} vs {}",
        safe.avg_result_error,
        plain.avg_result_error
    );
    // And it must actually skip work.
    assert!(
        safe.avg_safe_period_skips > 0.0,
        "safe period never skipped anything"
    );
    assert!(safe.avg_evals_per_object_tick < plain.avg_evals_per_object_tick);
}

#[test]
fn tiny_alpha_still_works() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(108).with_alpha(1.0));
    let m = sim.run();
    assert!(
        m.avg_result_error < 0.25,
        "α=1 error {}",
        m.avg_result_error
    );
}

#[test]
fn large_alpha_still_works() {
    let mut sim = MobiEyesSim::new(SimConfig::small_test(109).with_alpha(25.0));
    let m = sim.run();
    assert!(
        m.avg_result_error < 0.15,
        "α=25 error {}",
        m.avg_result_error
    );
}
