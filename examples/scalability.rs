//! Scalability comparison at paper scale: MobiEyes (eager and lazy) vs the
//! naive and central-optimal reporting schemes, plus the threaded actor
//! runtime on multiple cores — the headline claims of the paper in one
//! program.
//!
//! Run with: `cargo run --example scalability --release`

use mobieyes::prelude::*;
use mobieyes::sim::{MessagingKind, MessagingModel};

fn main() {
    // A mid-size workload (quarter of Table 1's defaults) so the example
    // finishes in seconds.
    let base = SimConfig {
        num_objects: 2500,
        num_queries: 250,
        objects_changing_velocity: 250,
        ticks: 20,
        warmup_ticks: 4,
        ..SimConfig::default()
    };

    println!(
        "workload: {} objects, {} queries, {} velocity changes/step, {:.0} sq-mi\n",
        base.num_objects, base.num_queries, base.objects_changing_velocity, base.area
    );

    let naive = MessagingModel::new(base.clone(), MessagingKind::Naive).run();
    let optimal = MessagingModel::new(base.clone(), MessagingKind::CentralOptimal).run();
    let eager = MobiEyesSim::new(base.clone()).run();
    let lazy = MobiEyesSim::new(base.clone().with_propagation(Propagation::Lazy)).run();

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "approach", "msgs/s", "uplink/s", "down/s", "power mW", "error"
    );
    for m in [&naive, &optimal, &eager, &lazy] {
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>10.1} {:>9.2} {:>8.4}",
            m.label,
            m.msgs_per_second,
            m.uplink_msgs_per_second,
            m.downlink_msgs_per_second,
            m.avg_power_mw,
            m.avg_result_error
        );
    }

    println!(
        "\nMobiEyes object-side load: LQT size {:.2}, {:.2} evals/object/step",
        eager.avg_lqt_size, eager.avg_evals_per_object_tick
    );

    // The same protocol on the threaded actor runtime.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    println!(
        "\nrunning the identical scenario on the threaded runtime ({threads} worker shards)..."
    );
    let start = std::time::Instant::now();
    let out = ThreadedSim::new(base, threads).run();
    println!(
        "threaded runtime: {} total msgs, avg LQT {:.2}, wall time {:.1}s",
        out.total_msgs,
        out.avg_lqt_size,
        start.elapsed().as_secs_f64()
    );
    println!("(the runtime_equivalence tests prove it is bit-identical to the lock-step run)");
}
