//! Quickstart: install one moving query over a handful of moving objects
//! and watch its result evolve as everyone moves.
//!
//! Run with: `cargo run --example quickstart`

use mobieyes::core::server::Net;
use mobieyes::net::BaseStationLayout;
use mobieyes::prelude::*;
use std::sync::Arc;

fn main() {
    // A 100x100 mile universe of discourse, 10-mile grid cells, base
    // stations every 20 miles.
    let universe = Rect::new(0.0, 0.0, 100.0, 100.0);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 10.0)));
    let mut net = Net::new(BaseStationLayout::new(universe, 20.0));
    let mut server = Server::new(Arc::clone(&config));

    // Five moving objects: object 0 drives east; the others sit at various
    // distances from its path. Max speed 0.02 mi/s (72 mph).
    let mut positions = [
        Point::new(20.0, 50.0), // the focal object, moving east
        Point::new(24.0, 50.0), // 4 miles ahead
        Point::new(50.0, 50.0), // on the path, 30 miles ahead
        Point::new(20.0, 80.0), // 30 miles north, never inside
        Point::new(28.0, 52.0), // 8 miles ahead, slightly north
    ];
    let velocities = [
        Vec2::new(0.02, 0.0),
        Vec2::ZERO,
        Vec2::ZERO,
        Vec2::ZERO,
        Vec2::ZERO,
    ];
    let mut agents: Vec<MovingObjectAgent> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.02,
                p,
                velocities[i],
                Arc::clone(&config),
            )
        })
        .collect();

    // "Everything within 5 miles of object 0, continuously."
    let qid = server.install_query(
        ObjectId(0),
        QueryRegion::circle(5.0),
        Filter::True,
        &mut net,
    );
    println!("installed moving query {qid:?} bound to object 0 (radius 5 mi)\n");

    // 30-second time steps for ~37 minutes of simulated time.
    for step in 0..75 {
        let t = step as f64 * 30.0;
        // Integrate motion.
        for (i, p) in positions.iter_mut().enumerate() {
            *p += velocities[i] * 30.0;
        }
        // Phase A: objects report motion events.
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.tick_motion(t, positions[i], velocities[i], &mut net);
        }
        // Server mediates.
        server.tick(&mut net);
        // Phase B: objects receive, evaluate, report result changes.
        for (i, agent) in agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            net.deliver(agent.oid().node(), positions[i], &mut inbox);
            agent.tick_process(t, inbox.iter().map(|m| &**m), &mut net);
        }
        net.end_tick();
        server.tick(&mut net);

        if step % 10 == 0 {
            let result = server.query_result(qid).expect("query installed");
            let ids: Vec<u32> = result.iter().map(|o| o.0).collect();
            println!(
                "t = {:4.0}s  focal at ({:5.1}, {:4.1})  result = {:?}",
                t, positions[0].x, positions[0].y, ids
            );
        }
    }

    let meter = net.meter();
    println!(
        "\ntraffic: {} uplink msgs, {} downlink msgs ({} broadcast)",
        meter.uplink_msgs,
        meter.downlink_msgs(),
        meter.broadcast_msgs
    );
    println!("note how objects 1, 4 and finally 2 enter/leave the moving circle");
}
