//! Renders a running MobiEyes deployment as an SVG snapshot: the grid,
//! base-station coverage, moving objects, query circles and their
//! monitoring regions. Useful for building intuition about the protocol's
//! geometry (and for documentation).
//!
//! Run with: `cargo run --example visualize --release`
//! Output:   `results/snapshot.svg`

use mobieyes::core::server::Net;
use mobieyes::net::BaseStationLayout;
use mobieyes::prelude::*;
use mobieyes::sim::Rng;
use std::fmt::Write as _;
use std::sync::Arc;

const SIDE: f64 = 100.0;
const ALPHA: f64 = 10.0;
const ALEN: f64 = 20.0;
const SCALE: f64 = 8.0; // px per mile

fn px(v: f64) -> f64 {
    v * SCALE
}

/// y-axis flip: SVG grows downward, our universe grows upward.
fn py(v: f64) -> f64 {
    (SIDE - v) * SCALE
}

fn main() {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let grid = Grid::new(universe, ALPHA);
    let layout = BaseStationLayout::new(universe, ALEN);
    let config = Arc::new(ProtocolConfig::new(grid.clone()));
    let mut net = Net::new(layout.clone());
    let mut server = Server::new(Arc::clone(&config));
    let mut rng = Rng::new(42);

    // 120 wandering objects.
    let n = 120;
    let mut positions: Vec<Point> = Vec::new();
    let mut velocities: Vec<Vec2> = Vec::new();
    let mut agents: Vec<MovingObjectAgent> = (0..n)
        .map(|i| {
            let pos = Point::new(rng.range(0.0, SIDE), rng.range(0.0, SIDE));
            let vel =
                Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU)) * rng.range(0.0, 0.02);
            positions.push(pos);
            velocities.push(vel);
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new(),
                0.02,
                pos,
                vel,
                Arc::clone(&config),
            )
        })
        .collect();

    // Three moving queries with different radii.
    let radii = [6.0, 9.0, 4.0];
    let focals = [ObjectId(5), ObjectId(40), ObjectId(90)];
    let qids: Vec<_> = focals
        .iter()
        .zip(&radii)
        .map(|(&f, &r)| server.install_query(f, QueryRegion::circle(r), Filter::True, &mut net))
        .collect();

    // Run a few minutes so state settles and things move.
    for step in 0..12 {
        let t = step as f64 * 30.0;
        for i in 0..n {
            let mut p = positions[i] + velocities[i] * 30.0;
            if p.x < 0.0 || p.x > SIDE {
                velocities[i].x = -velocities[i].x;
                p.x = p.x.clamp(0.0, SIDE);
            }
            if p.y < 0.0 || p.y > SIDE {
                velocities[i].y = -velocities[i].y;
                p.y = p.y.clamp(0.0, SIDE);
            }
            positions[i] = p;
        }
        for (i, a) in agents.iter_mut().enumerate() {
            a.tick_motion(t, positions[i], velocities[i], &mut net);
        }
        server.tick(&mut net);
        for (i, a) in agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            net.deliver(ObjectId(i as u32).node(), positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), &mut net);
        }
        net.end_tick();
        server.tick(&mut net);
    }

    // --- render -------------------------------------------------------------
    let size = px(SIDE);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" viewBox="0 0 {size} {size}">"##
    );
    let _ = writeln!(
        svg,
        r##"<rect width="{size}" height="{size}" fill="#fbfbf8"/>"##
    );

    // Grid lines.
    let mut k = 0.0;
    while k <= SIDE + 1e-9 {
        let v = px(k);
        let _ = writeln!(
            svg,
            r##"<line x1="{v}" y1="0" x2="{v}" y2="{size}" stroke="#ddd" stroke-width="1"/>"##
        );
        let _ = writeln!(
            svg,
            r##"<line x1="0" y1="{v}" x2="{size}" y2="{v}" stroke="#ddd" stroke-width="1"/>"##
        );
        k += ALPHA;
    }

    // Base-station coverage circles.
    for s in 0..layout.num_stations() {
        let c = layout.center(mobieyes::net::StationId(s as u32));
        let _ = writeln!(
            svg,
            r##"<circle cx="{}" cy="{}" r="{}" fill="none" stroke="#b8d4e8" stroke-width="1" stroke-dasharray="4 4"/>"##,
            px(c.x),
            py(c.y),
            px(layout.coverage_radius())
        );
    }

    // Monitoring regions (shaded cells) and query circles.
    let colors = ["#d23f31", "#2b6cb0", "#2f855a"];
    for ((&qid, &focal), (color, &radius)) in
        qids.iter().zip(&focals).zip(colors.iter().zip(&radii))
    {
        let fpos = positions[focal.0 as usize];
        let cell = grid.cell_of(fpos);
        let mon = grid.monitoring_region(cell, radius);
        for c in mon.iter() {
            let r = grid.cell_rect(c);
            let _ = writeln!(
                svg,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="{color}" fill-opacity="0.06"/>"##,
                px(r.lx),
                py(r.hy()),
                px(r.w()),
                px(r.h())
            );
        }
        let _ = writeln!(
            svg,
            r##"<circle cx="{}" cy="{}" r="{}" fill="{color}" fill-opacity="0.10" stroke="{color}" stroke-width="2"/>"##,
            px(fpos.x),
            py(fpos.y),
            px(radius)
        );
        // Focal marker.
        let _ = writeln!(
            svg,
            r##"<circle cx="{}" cy="{}" r="6" fill="{color}"/>"##,
            px(fpos.x),
            py(fpos.y)
        );
        let members = server.query_result(qid).map(|r| r.len()).unwrap_or(0);
        let _ = writeln!(
            svg,
            r##"<text x="{}" y="{}" font-family="sans-serif" font-size="13" fill="{color}">{:?}: {} objects</text>"##,
            px(fpos.x) + 10.0,
            py(fpos.y) - 10.0,
            qid,
            members
        );
    }

    // Objects: targets of some query are filled, others hollow.
    for (i, p) in positions.iter().enumerate() {
        let is_target = qids.iter().any(|&q| {
            server
                .query_result(q)
                .map(|r| r.contains(&ObjectId(i as u32)))
                .unwrap_or(false)
        });
        if is_target {
            let _ = writeln!(
                svg,
                r##"<circle cx="{}" cy="{}" r="3.5" fill="#333"/>"##,
                px(p.x),
                py(p.y)
            );
        } else {
            let _ = writeln!(
                svg,
                r##"<circle cx="{}" cy="{}" r="2.5" fill="none" stroke="#777" stroke-width="1"/>"##,
                px(p.x),
                py(p.y)
            );
        }
    }
    let _ = writeln!(svg, "</svg>");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/snapshot.svg", &svg).expect("write svg");
    println!("wrote results/snapshot.svg ({} bytes)", svg.len());
    for (&qid, &f) in qids.iter().zip(&focals) {
        let r = server.query_result(qid).unwrap();
        println!("{qid:?} (focal {f:?}): {} objects in result", r.len());
    }
    // Sanity: the protocol's answer matches a direct geometric check.
    for ((&qid, &focal), &radius) in qids.iter().zip(&focals).zip(&radii) {
        let fpos = positions[focal.0 as usize];
        let expect = positions
            .iter()
            .filter(|p| QueryRegion::circle(radius).contains_from(fpos, **p))
            .count();
        let got = server.query_result(qid).unwrap().len();
        assert!(
            (expect as i64 - got as i64).abs() <= 2,
            "{qid:?}: protocol {got} vs geometric {expect}"
        );
    }
    println!("protocol results verified against direct geometry");
}
