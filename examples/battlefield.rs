//! The paper's MQ1 scenario: "Give me the number of friendly units within
//! 5 miles radius around me during the next 2 hours", posed by moving
//! units in the field. Demonstrates property filters, multiple concurrent
//! moving queries and the distributed result maintenance.
//!
//! Run with: `cargo run --example battlefield --release`

use mobieyes::core::server::Net;
use mobieyes::net::BaseStationLayout;
use mobieyes::prelude::*;
use mobieyes::sim::Rng;
use std::sync::Arc;

const FIELD: f64 = 60.0; // 60x60 mile theater
const TS: f64 = 30.0; // 30-second steps
const UNITS: usize = 200;

fn main() {
    let universe = Rect::new(0.0, 0.0, FIELD, FIELD);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 6.0)));
    let mut net = Net::new(BaseStationLayout::new(universe, 12.0));
    let mut server = Server::new(Arc::clone(&config));
    let mut rng = Rng::new(2004);

    // 200 units; 60 % friendly, 40 % hostile; various unit types.
    let kinds = ["infantry", "tank", "recon", "medevac"];
    let mut positions = Vec::new();
    let mut velocities = Vec::new();
    let mut agents: Vec<MovingObjectAgent> = (0..UNITS)
        .map(|i| {
            let pos = Point::new(rng.range(0.0, FIELD), rng.range(0.0, FIELD));
            let dir = Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU));
            let speed = rng.range(0.0, 0.015); // up to ~54 mph
            let friendly = rng.unit() < 0.6;
            let props = Properties::new()
                .with("friendly", friendly)
                .with("kind", kinds[rng.below(kinds.len())]);
            positions.push(pos);
            velocities.push(dir * speed);
            MovingObjectAgent::new(
                ObjectId(i as u32),
                props,
                0.015,
                pos,
                dir * speed,
                Arc::clone(&config),
            )
        })
        .collect();

    // Ten commanders each post MQ1: friendly units within 5 miles of me.
    let friendly_filter = Filter::Eq("friendly".into(), true.into());
    let commanders: Vec<ObjectId> = (0..10).map(|i| ObjectId(i * 17)).collect();
    let qids: Vec<_> = commanders
        .iter()
        .map(|&c| {
            server.install_query(
                c,
                QueryRegion::circle(5.0),
                friendly_filter.clone(),
                &mut net,
            )
        })
        .collect();
    // One commander also tracks nearby friendly medevac units (a second,
    // groupable query on the same focal object).
    let medevac = Filter::And(
        Box::new(friendly_filter.clone()),
        Box::new(Filter::Eq("kind".into(), "medevac".into())),
    );
    let medevac_q =
        server.install_query(commanders[0], QueryRegion::circle(8.0), medevac, &mut net);

    println!(
        "{} units, {} moving queries installed\n",
        UNITS,
        qids.len() + 1
    );

    // Two simulated hours.
    for step in 0..240 {
        let t = step as f64 * TS;
        for i in 0..UNITS {
            let mut p = positions[i] + velocities[i] * TS;
            // Units bounce off the theater boundary.
            if p.x < 0.0 || p.x > FIELD {
                velocities[i].x = -velocities[i].x;
                p.x = p.x.clamp(0.0, FIELD);
            }
            if p.y < 0.0 || p.y > FIELD {
                velocities[i].y = -velocities[i].y;
                p.y = p.y.clamp(0.0, FIELD);
            }
            positions[i] = p;
        }
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.tick_motion(t, positions[i], velocities[i], &mut net);
        }
        server.tick(&mut net);
        for (i, agent) in agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            net.deliver(agent.oid().node(), positions[i], &mut inbox);
            agent.tick_process(t, inbox.iter().map(|m| &**m), &mut net);
        }
        net.end_tick();
        server.tick(&mut net);

        if step % 60 == 0 {
            println!("t = {:5.0}s ({} min)", t, (t / 60.0) as u32);
            for (k, &qid) in qids.iter().enumerate() {
                let n = server.query_result(qid).map(|r| r.len()).unwrap_or(0);
                print!("  cmdr{k:02}:{n:3}");
                if (k + 1) % 5 == 0 {
                    println!();
                }
            }
            let med = server.query_result(medevac_q).map(|r| r.len()).unwrap_or(0);
            println!("  medevac units near cmdr00: {med}\n");
        }
    }

    let meter = net.meter();
    println!("two hours of operation:");
    println!("  uplink messages:   {:>8}", meter.uplink_msgs);
    println!("  downlink messages: {:>8}", meter.downlink_msgs());
    println!(
        "  total bytes:       {:>8} ({} up / {} down)",
        meter.total_bytes(),
        meter.uplink_bytes,
        meter.unicast_bytes + meter.broadcast_bytes
    );
    let naive_msgs = UNITS as u64 * 240;
    println!(
        "  a naive position-per-step scheme would have sent {naive_msgs} uplink messages ({:.1}x more uplink traffic)",
        naive_msgs as f64 / meter.uplink_msgs.max(1) as f64
    );
}
