//! Adaptive k-nearest-neighbor moving queries: a medevac unit continuously
//! tracks its 5 nearest friendly units while everyone moves. Demonstrates
//! the kNN extension layered on the unmodified MobiEyes protocol (the
//! radius controller only uses the standard query-update broadcast).
//!
//! Run with: `cargo run --example knn_tracking --release`

use mobieyes::core::server::Net;
use mobieyes::core::{KnnConfig, KnnCoordinator};
use mobieyes::net::BaseStationLayout;
use mobieyes::prelude::*;
use mobieyes::sim::Rng;
use std::sync::Arc;

const SIDE: f64 = 80.0;
const TS: f64 = 30.0;
const UNITS: usize = 120;
const K: usize = 5;

fn main() {
    let universe = Rect::new(0.0, 0.0, SIDE, SIDE);
    let config = Arc::new(ProtocolConfig::new(Grid::new(universe, 8.0)));
    let mut net = Net::new(BaseStationLayout::new(universe, 16.0));
    let mut server = Server::new(Arc::clone(&config));
    let mut knn = KnnCoordinator::new(KnnConfig::default());
    let mut rng = Rng::new(11);

    let mut positions = Vec::new();
    let mut velocities = Vec::new();
    let mut agents: Vec<MovingObjectAgent> = (0..UNITS)
        .map(|i| {
            let pos = Point::new(rng.range(0.0, SIDE), rng.range(0.0, SIDE));
            let vel =
                Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU)) * rng.range(0.0, 0.012);
            let friendly = rng.unit() < 0.7;
            positions.push(pos);
            velocities.push(vel);
            MovingObjectAgent::new(
                ObjectId(i as u32),
                Properties::new().with("friendly", friendly),
                0.012,
                pos,
                vel,
                Arc::clone(&config),
            )
        })
        .collect();

    // "My 5 nearest friendly units, continuously" — initial radius guess 2.
    let filter = Filter::Eq("friendly".into(), true.into());
    let qid = knn.install(&mut server, ObjectId(0), K, 2.0, filter, &mut net);
    println!("installed adaptive {K}-NN query {qid:?} on unit 0 (initial radius 2 mi)\n");

    for step in 0..60 {
        let t = step as f64 * TS;
        for i in 0..UNITS {
            let mut p = positions[i] + velocities[i] * TS;
            if p.x < 0.0 || p.x > SIDE {
                velocities[i].x = -velocities[i].x;
                p.x = p.x.clamp(0.0, SIDE);
            }
            if p.y < 0.0 || p.y > SIDE {
                velocities[i].y = -velocities[i].y;
                p.y = p.y.clamp(0.0, SIDE);
            }
            positions[i] = p;
        }
        for (i, a) in agents.iter_mut().enumerate() {
            a.tick_motion(t, positions[i], velocities[i], &mut net);
        }
        server.tick(&mut net);
        for (i, a) in agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            net.deliver(ObjectId(i as u32).node(), positions[i], &mut inbox);
            a.tick_process(t, inbox.iter().map(|m| &**m), &mut net);
        }
        net.end_tick();
        server.tick(&mut net);
        knn.tick(&mut server, &mut net);

        if step % 10 == 0 {
            let candidates = knn.candidates(&server, qid).map(|c| c.len()).unwrap_or(0);
            let ranked = knn.rank_candidates(&server, qid, positions[0], |oid| {
                Some(positions[oid.0 as usize])
            });
            let ids: Vec<String> = ranked
                .iter()
                .map(|(o, d)| format!("{}@{:.1}mi", o.0, d))
                .collect();
            println!(
                "t = {:4.0}s  radius {:5.2} mi  candidates {:3}  top-{K}: [{}]",
                t,
                knn.radius(qid).unwrap(),
                candidates,
                ids.join(", ")
            );
        }
    }
    println!(
        "\nradius adapted {} times; {} total messages on the medium",
        knn.adaptations(qid),
        net.meter().total_msgs()
    );
}
