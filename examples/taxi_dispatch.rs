//! The paper's MQ2 scenario: "Give me the positions of those customers who
//! are looking for taxi and are within 5 miles during the next 20
//! minutes", posed by taxi drivers. Demonstrates lazy query propagation
//! and the uplink savings it buys, using the full simulation harness.
//!
//! Run with: `cargo run --example taxi_dispatch --release`

use mobieyes::core::server::Net;
use mobieyes::net::BaseStationLayout;
use mobieyes::prelude::*;
use mobieyes::sim::Rng;
use std::sync::Arc;

const CITY: f64 = 30.0; // 30x30 mile city
const TS: f64 = 30.0;
const TAXIS: usize = 40;
const CUSTOMERS: usize = 400;

struct World {
    positions: Vec<Point>,
    velocities: Vec<Vec2>,
    agents: Vec<MovingObjectAgent>,
    server: Server,
    net: Net,
    qids: Vec<QueryId>,
}

fn build(propagation: Propagation, seed: u64) -> World {
    let universe = Rect::new(0.0, 0.0, CITY, CITY);
    let config =
        Arc::new(ProtocolConfig::new(Grid::new(universe, 3.0)).with_propagation(propagation));
    let mut net = Net::new(BaseStationLayout::new(universe, 6.0));
    let mut server = Server::new(Arc::clone(&config));
    let mut rng = Rng::new(seed);

    let n = TAXIS + CUSTOMERS;
    let mut positions = Vec::with_capacity(n);
    let mut velocities = Vec::with_capacity(n);
    let agents: Vec<MovingObjectAgent> = (0..n)
        .map(|i| {
            let pos = Point::new(rng.range(0.0, CITY), rng.range(0.0, CITY));
            let dir = Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU));
            let speed = rng.range(0.002, 0.012); // 7–43 mph city traffic
            let is_taxi = i < TAXIS;
            // Roughly half the customers are currently looking for a ride.
            let looking = !is_taxi && rng.unit() < 0.5;
            let props = Properties::new()
                .with("taxi", is_taxi)
                .with("looking_for_taxi", looking);
            positions.push(pos);
            velocities.push(dir * speed);
            MovingObjectAgent::new(
                ObjectId(i as u32),
                props,
                0.012,
                pos,
                dir * speed,
                Arc::clone(&config),
            )
        })
        .collect();

    // Every taxi posts MQ2.
    let filter = Filter::Eq("looking_for_taxi".into(), true.into());
    let qids = (0..TAXIS)
        .map(|i| {
            server.install_query(
                ObjectId(i as u32),
                QueryRegion::circle(5.0),
                filter.clone(),
                &mut net,
            )
        })
        .collect();
    World {
        positions,
        velocities,
        agents,
        server,
        net,
        qids,
    }
}

fn run(world: &mut World, steps: usize, mut rng: Rng, report: bool) {
    for step in 0..steps {
        let t = step as f64 * TS;
        for i in 0..world.positions.len() {
            // Occasional direction changes (city corners).
            if rng.unit() < 0.05 {
                let speed = world.velocities[i].norm();
                world.velocities[i] =
                    Vec2::from_angle(rng.range(0.0, std::f64::consts::TAU)) * speed;
            }
            let mut p = world.positions[i] + world.velocities[i] * TS;
            if p.x < 0.0 || p.x > CITY {
                world.velocities[i].x = -world.velocities[i].x;
                p.x = p.x.clamp(0.0, CITY);
            }
            if p.y < 0.0 || p.y > CITY {
                world.velocities[i].y = -world.velocities[i].y;
                p.y = p.y.clamp(0.0, CITY);
            }
            world.positions[i] = p;
        }
        for (i, agent) in world.agents.iter_mut().enumerate() {
            agent.tick_motion(t, world.positions[i], world.velocities[i], &mut world.net);
        }
        world.server.tick(&mut world.net);
        for (i, agent) in world.agents.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            world
                .net
                .deliver(agent.oid().node(), world.positions[i], &mut inbox);
            agent.tick_process(t, inbox.iter().map(|m| &**m), &mut world.net);
        }
        world.net.end_tick();
        world.server.tick(&mut world.net);

        if report && step % 10 == 0 {
            let total: usize = world
                .qids
                .iter()
                .filter_map(|&q| world.server.query_result(q))
                .map(|r| r.len())
                .sum();
            let best =
                world.qids.iter().enumerate().max_by_key(|(_, &q)| {
                    world.server.query_result(q).map(|r| r.len()).unwrap_or(0)
                });
            if let Some((taxi, &q)) = best {
                println!(
                    "t = {:4.0}s  {} customer sightings across {} taxis; taxi {:02} sees {}",
                    t,
                    total,
                    TAXIS,
                    taxi,
                    world.server.query_result(q).map(|r| r.len()).unwrap_or(0)
                );
            }
        }
    }
}

fn main() {
    // 20 minutes of dispatch under eager propagation, with live output.
    println!("== taxi dispatch, eager query propagation ==");
    let mut eager = build(Propagation::Eager, 7);
    run(&mut eager, 40, Rng::new(99), true);

    // The same 20 minutes under lazy propagation (same RNG streams).
    println!("\n== same workload, lazy query propagation ==");
    let mut lazy = build(Propagation::Lazy, 7);
    run(&mut lazy, 40, Rng::new(99), false);

    let (em, lm) = (eager.net.meter(), lazy.net.meter());
    println!("\n                      eager      lazy");
    println!(
        "uplink msgs      {:>10} {:>9}",
        em.uplink_msgs, lm.uplink_msgs
    );
    println!(
        "downlink msgs    {:>10} {:>9}",
        em.downlink_msgs(),
        lm.downlink_msgs()
    );
    println!(
        "total bytes      {:>10} {:>9}",
        em.total_bytes(),
        lm.total_bytes()
    );
    println!(
        "\nlazy propagation cut uplink messages by {:.0}% — non-focal objects\nnever contact the server when they cross grid cells",
        100.0 * (1.0 - lm.uplink_msgs as f64 / em.uplink_msgs.max(1) as f64)
    );
}
